"""Tests for the workload generators (the experiment inputs)."""

import pytest

from repro.datalog.parser import parse_literal
from repro.workloads.examples import (
    example_43_edb,
    example_43_violating_edbs,
    same_generation_edb,
    same_generation_query_node,
)
from repro.workloads.graphs import (
    chain_edb,
    complete_edb,
    cycle_edb,
    grid_edb,
    random_digraph_edb,
    tree_edb,
)
from repro.workloads.lists import pmem_edb, pmem_query
from repro.workloads.synthetic import random_edb, random_program, random_rlc_program


class TestGraphs:
    def test_chain(self):
        db = chain_edb(5)
        assert db.total_facts() == 4
        assert db.has_fact("e", (0, 1)) and db.has_fact("e", (3, 4))

    def test_cycle(self):
        db = cycle_edb(4)
        assert db.has_fact("e", (3, 0))
        assert db.total_facts() == 4

    def test_complete(self):
        db = complete_edb(4)
        assert db.total_facts() == 12  # n(n-1), no self loops
        assert not db.has_fact("e", (1, 1))

    def test_random_deterministic(self):
        a = random_digraph_edb(10, 20, seed=3)
        b = random_digraph_edb(10, 20, seed=3)
        assert a == b
        c = random_digraph_edb(10, 20, seed=4)
        assert a != c

    def test_random_edge_budget(self):
        db = random_digraph_edb(6, 10, seed=1)
        assert len(db.facts("e")) == 10

    def test_random_cannot_exceed_complete(self):
        db = random_digraph_edb(3, 100, seed=1)
        assert len(db.facts("e")) == 6

    def test_tree_structure(self):
        db = tree_edb(3, 2)
        assert len(db.facts("up")) == 2 + 4 + 8
        assert len(db.facts("down")) == 14
        # every child has exactly one parent
        children = [c for (c, _) in db.relations[("up", 2)].tuples]
        assert len(children) == len(set(children))

    def test_grid_edges(self):
        db = grid_edb(2, 3)
        # right edges: 2 rows * 2, down edges: 1 * 3
        assert db.total_facts() == 4 + 3

    def test_custom_relation_name(self):
        db = chain_edb(3, relation="hop")
        assert db.has_fact("hop", (0, 1))


class TestLists:
    def test_pmem_query_shape(self):
        goal = pmem_query(3)
        assert goal.predicate == "pmem"
        assert goal.args[1].is_ground()

    def test_pmem_edb_selectivity(self):
        db = pmem_edb(10, satisfying=[1, 5])
        assert len(db.facts("p")) == 2

    def test_pmem_edb_default_total(self):
        assert len(pmem_edb(7).facts("p")) == 7


class TestExampleEdbs:
    def test_example_43_conditions_hold(self):
        """The generator must satisfy Example 4.3's run-time conditions."""
        db = example_43_edb(20)
        e_targets = {b for (_, b) in db.relations[("e", 2)].tuples}
        for rel in ("r1", "r2", "r3"):
            members = {x for (x,) in db.relations[(rel, 1)].tuples}
            assert e_targets <= members
        f_sources = {a for (a, _) in db.relations[("f", 2)].tuples}
        l1 = {x for (x,) in db.relations[("l1", 1)].tuples}
        assert f_sources <= l1

    def test_violating_edbs_are_the_papers(self):
        cases = example_43_violating_edbs()
        bound_first_db, _ = cases["bound_first"]
        assert bound_first_db.has_fact("c1", (6, 2))
        free_exit_db, _ = cases["free_exit"]
        assert free_exit_db.has_fact("l1", (5,))
        assert not free_exit_db.get("r1", 1)

    def test_same_generation_query_node(self):
        node = same_generation_query_node(3, 2)
        db = same_generation_edb(3, 2)
        # the node exists as a child in the tree
        children = {c.value for (c, _) in db.relations[("up", 2)].tuples}
        assert node in children


class TestSynthetic:
    def test_rlc_program_has_one_exit(self):
        program = random_rlc_program(7, rules=3)
        exits = [
            r for r in program.rules_for("p") if not r.body_literals("p")
        ]
        assert len(exits) == 1

    def test_rlc_deterministic(self):
        assert random_rlc_program(1) == random_rlc_program(1)
        assert random_rlc_program(1) != random_rlc_program(2)

    def test_random_edb_covers_pools(self):
        db = random_edb(0, n=5, edb_pool=2)
        assert db.get("e0", 2) and db.get("e1", 2)
        assert db.get("r0", 1)
