"""Write-ahead journal: record format, torn tails, and recovery.

The load-bearing property is *replay determinism*: a session recovered
from a journal — after a clean shutdown, a crash mid-batch, or a crash
mid-journal-write — is bit-identical (database, EDB, derivations) to a
session that applied the same committed batches and never crashed.
``TestRecoveryMatrix`` checks it across the full knob matrix, and the
torn-tail tests check it for a crash at *every byte offset* of the
final record.
"""

import pickle

import pytest

from repro.datalog.parser import parse_program
from repro.engine import faults
from repro.engine.database import Database
from repro.engine.faults import FaultInjected, parse_faults
from repro.engine.incremental import IncrementalSession
from repro.engine.stats import MaintenanceError
from repro.engine.journal import (
    MAGIC,
    Journal,
    JournalError,
    recover_session,
    replay_journal,
)

TC_TEXT = """
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, Z), t(Z, Y).
"""

BASE = {"e": [(1, 2), (2, 3)]}

#: The batch sequence every journal test replays.
SCRIPT = [
    ([("e", (3, 4))], []),
    ([("e", (4, 5)), ("e", (5, 6))], [("e", (1, 2))]),
    ([], [("e", (5, 6))]),
]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def run_journaled(path, batches=SCRIPT, **session_kwargs):
    """Apply ``batches`` through a session while journaling each one."""
    program = parse_program(TC_TEXT)
    session = IncrementalSession(
        program, Database.from_dict(BASE), **session_kwargs
    )
    with Journal(path) as journal:
        for inserts, deletes in batches:
            journal.append_batch(inserts, deletes)
            session.apply_batch(
                inserts=inserts or None, deletes=deletes or None
            )
    return session


def clean_session(batches=SCRIPT, **session_kwargs):
    program = parse_program(TC_TEXT)
    session = IncrementalSession(
        program, Database.from_dict(BASE), **session_kwargs
    )
    for inserts, deletes in batches:
        session.apply_batch(inserts=inserts or None, deletes=deletes or None)
    return session


def assert_same_state(recovered, clean):
    assert recovered.database == clean.database
    assert recovered.edb == clean.edb
    assert recovered._derivations == clean._derivations


class TestRecordFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.rjn"
        run_journaled(path)
        replay = replay_journal(path)
        assert replay.batches == SCRIPT
        assert replay.checkpoint is None
        assert not replay.torn

    def test_empty_journal_is_clean(self, tmp_path):
        path = tmp_path / "wal.rjn"
        Journal(path).close()
        replay = replay_journal(path)
        assert replay.batches == []
        assert not replay.torn
        assert replay.tail_offset == len(MAGIC)

    def test_abort_drops_the_preceding_batch(self, tmp_path):
        path = tmp_path / "wal.rjn"
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            journal.append_batch(*SCRIPT[1])
            journal.append_abort()
        replay = replay_journal(path)
        assert replay.batches == [SCRIPT[0]]

    def test_checkpoint_resets_the_replay_base(self, tmp_path):
        path = tmp_path / "wal.rjn"
        edb = Database.from_dict({"e": [(7, 8)]})
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            journal.append_checkpoint(edb)
            journal.append_batch(*SCRIPT[1])
        replay = replay_journal(path)
        assert replay.checkpoint == edb
        assert replay.batches == [SCRIPT[1]]

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.rjn"
        path.write_bytes(b"NOPE" + b"x" * 32)
        with pytest.raises(JournalError, match="not a repro journal"):
            replay_journal(path)
        with pytest.raises(JournalError, match="bad magic"):
            Journal(path)

    def test_missing_magic_raises(self, tmp_path):
        path = tmp_path / "wal.rjn"
        path.write_bytes(b"RJ")
        with pytest.raises(JournalError):
            replay_journal(path)

    def test_crc_corruption_stops_replay_at_that_record(self, tmp_path):
        path = tmp_path / "wal.rjn"
        run_journaled(path)
        clean = replay_journal(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the last payload
        path.write_bytes(bytes(data))
        replay = replay_journal(path)
        assert replay.torn
        assert replay.batches == clean.batches[:-1]
        assert replay.tail_offset < len(data)

    def test_unknown_kind_stops_replay(self, tmp_path):
        path = tmp_path / "wal.rjn"
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            offset = journal._fh.tell()
            journal.append_batch(*SCRIPT[1])
        data = bytearray(path.read_bytes())
        data[offset] = ord("Z")
        path.write_bytes(bytes(data))
        replay = replay_journal(path)
        assert replay.torn
        assert replay.batches == [SCRIPT[0]]
        assert replay.tail_offset == offset

    def test_garbage_pickle_with_valid_crc_stops_replay(self, tmp_path):
        import struct
        import zlib

        path = tmp_path / "wal.rjn"
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            payload = b"not a pickle"
            journal._fh.write(
                b"B"
                + struct.pack(
                    ">II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
                )
                + payload
            )
        replay = replay_journal(path)
        assert replay.torn
        assert replay.batches == [SCRIPT[0]]


class TestTornTail:
    def test_every_truncation_point_of_the_final_record(self, tmp_path):
        """Crash at any byte of the last write → replay the rest cleanly."""
        path = tmp_path / "wal.rjn"
        run_journaled(path)
        full = path.read_bytes()
        prefix = replay_journal(path)
        last_start = None
        data = full
        # Recompute record boundaries by walking the clean file.
        import struct

        pos = len(MAGIC)
        while pos < len(data):
            last_start = pos
            length, _ = struct.unpack_from(">II", data, pos + 1)
            pos += 1 + 8 + length
        assert last_start is not None
        for cut in range(last_start + 1, len(full)):
            path.write_bytes(full[:cut])
            replay = replay_journal(path)
            assert replay.torn
            assert replay.tail_offset == last_start
            assert replay.batches == prefix.batches[:-1]

    def test_recover_truncates_torn_tail_and_continues(self, tmp_path):
        path = tmp_path / "wal.rjn"
        run_journaled(path)
        full = path.read_bytes()
        path.write_bytes(full[:-3])  # tear the final record
        program = parse_program(TC_TEXT)
        session, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE)
        )
        assert replayed == len(SCRIPT) - 1
        clean = clean_session(SCRIPT[:-1])
        assert_same_state(session, clean)
        # The torn tail is gone and the journal accepts new appends.
        journal.append_batch(*SCRIPT[-1])
        journal.close()
        assert replay_journal(path).batches == SCRIPT
        assert not replay_journal(path).torn

    def test_injected_torn_write_behaves_like_a_crash(self, tmp_path):
        path = tmp_path / "wal.rjn"
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            faults.install(parse_faults("journal:torn:1"))
            with pytest.raises(FaultInjected, match="torn journal write"):
                journal.append_batch(*SCRIPT[1])
            faults.install(None)
        replay = replay_journal(path)
        assert replay.torn
        assert replay.batches == [SCRIPT[0]]
        program = parse_program(TC_TEXT)
        session, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE)
        )
        journal.close()
        assert replayed == 1
        assert_same_state(session, clean_session(SCRIPT[:1]))


class TestRecoverSession:
    def test_recover_matches_clean_run(self, tmp_path):
        path = tmp_path / "wal.rjn"
        run_journaled(path)
        program = parse_program(TC_TEXT)
        session, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE)
        )
        journal.close()
        assert replayed == len(SCRIPT)
        assert_same_state(session, clean_session())

    def test_recover_from_checkpoint_ignores_history(self, tmp_path):
        path = tmp_path / "wal.rjn"
        program = parse_program(TC_TEXT)
        session = IncrementalSession(program, Database.from_dict(BASE))
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            session.apply_batch(inserts=SCRIPT[0][0])
            journal.append_checkpoint(session.edb)
            journal.append_batch(*SCRIPT[1])
            session.apply_batch(
                inserts=SCRIPT[1][0], deletes=SCRIPT[1][1]
            )
        recovered, journal, replayed = recover_session(program, path)
        journal.close()
        assert replayed == 1  # only the post-checkpoint batch
        assert_same_state(recovered, session)

    def test_committed_batch_that_failed_refails_on_replay(self, tmp_path):
        """A batch journaled but rolled back (abort record lost in the
        crash) must re-fail deterministically during replay, leaving
        the recovered state equal to what the client observed.  The
        failure here is data-driven — a chained-edge batch that blows
        the round budget — so original run and replay fail alike."""
        path = tmp_path / "wal.rjn"
        program = parse_program(TC_TEXT)
        knobs = dict(max_iterations=10)
        poison = [("e", (100 + i, 101 + i)) for i in range(25)]
        session = IncrementalSession(
            program, Database.from_dict(BASE), **knobs
        )
        with Journal(path) as journal:
            journal.append_batch(*SCRIPT[0])
            session.apply_batch(inserts=SCRIPT[0][0])
            # The journal write succeeds (WAL order), then the apply
            # fails and the crash "loses" the abort record.
            journal.append_batch(poison, [])
            with pytest.raises(MaintenanceError):
                session.apply_batch(inserts=poison)
        recovered, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE), **knobs
        )
        journal.close()
        assert replayed == 1  # the poisoned batch re-failed and was skipped
        assert_same_state(recovered, session)

    def test_recover_empty_journal_is_the_base_state(self, tmp_path):
        path = tmp_path / "wal.rjn"
        Journal(path).close()
        program = parse_program(TC_TEXT)
        session, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE)
        )
        journal.close()
        assert replayed == 0
        assert_same_state(session, clean_session(batches=[]))


class TestRecoveryMatrix:
    """Replay determinism across the full knob matrix (satellite c)."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("planner", ["greedy", "cost"])
    @pytest.mark.parametrize("provenance", [False, True])
    def test_recovered_state_is_bit_identical(
        self, tmp_path, backend, planner, provenance
    ):
        knobs = dict(
            planner=planner,
            jobs=2 if backend != "serial" else 1,
            backend=backend,
            record_provenance=provenance,
        )
        path = tmp_path / "wal.rjn"
        original = run_journaled(path, **knobs)
        program = parse_program(TC_TEXT)
        recovered, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE), **knobs
        )
        journal.close()
        assert replayed == len(SCRIPT)
        assert_same_state(recovered, original)
        if provenance:
            assert recovered._derivations is not None

    @pytest.mark.parametrize("provenance", [False, True])
    def test_truncated_tail_matrix(self, tmp_path, provenance):
        """Torn final record + recovery, with and without provenance."""
        knobs = dict(record_provenance=provenance)
        path = tmp_path / "wal.rjn"
        run_journaled(path, **knobs)
        full = path.read_bytes()
        path.write_bytes(full[: len(full) // 2 + len(MAGIC)])
        program = parse_program(TC_TEXT)
        recovered, journal, replayed = recover_session(
            program, path, Database.from_dict(BASE), **knobs
        )
        journal.close()
        clean = clean_session(SCRIPT[:replayed], **knobs)
        assert_same_state(recovered, clean)


class TestConcurrentCrashDrill:
    """SIGKILL a socket-mode serve while reader connections are
    mid-query; recovery must still be byte-identical to a run that
    never crashed (the CI crash-recovery smoke, concurrent edition)."""

    def test_sigkill_under_reader_load_recovers_bit_identical(
        self, tmp_path, capsys
    ):
        import os
        import signal
        import socket
        import subprocess
        import sys
        import threading

        import repro
        from repro.cli import main as cli_main

        program_file = str(tmp_path / "tc.dl")
        facts_file = str(tmp_path / "facts.dl")
        with open(program_file, "w") as fh:
            fh.write(TC_TEXT)
        with open(facts_file, "w") as fh:
            fh.write("e(1, 2).\ne(2, 3).\n")
        journal = str(tmp_path / "crash.rjn")

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                program_file, "--facts", facts_file, "--journal", journal,
                "--workers", "3", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        readers = []
        try:
            banner = proc.stdout.readline().strip()
            assert banner.startswith("listening on "), banner
            host, _, port = banner[len("listening on "):].rpartition(":")
            address = (host, int(port))

            def exchange(sock_file, sock, line):
                """One command in, payload + status out."""
                sock.sendall((line + "\n").encode("utf-8"))
                while True:
                    reply = sock_file.readline()
                    if not reply:
                        return None  # server died (the kill)
                    if not reply.startswith("= "):
                        return reply.strip()

            stop = threading.Event()
            served_one = [threading.Event() for _ in range(2)]

            def reader(slot):
                try:
                    with socket.create_connection(
                        address, timeout=10
                    ) as sock, sock.makefile("r", encoding="utf-8") as rfile:
                        while not stop.is_set():
                            status = exchange(rfile, sock, "? t(X, Y)")
                            if status is None:
                                return
                            assert status.endswith("answers"), status
                            served_one[slot].set()
                except OSError:
                    pass  # connection torn by the SIGKILL — expected

            readers = [
                threading.Thread(target=reader, args=(slot,), daemon=True)
                for slot in range(2)
            ]
            for thread in readers:
                thread.start()

            updates = ["+ e(3, 4).", "+ e(4, 5).", "- e(1, 2)."]
            with socket.create_connection(
                address, timeout=10
            ) as sock, sock.makefile("r", encoding="utf-8") as rfile:
                for line in updates:
                    status = exchange(rfile, sock, line)
                    assert status is not None and status.startswith("ok"), (
                        f"batch not acknowledged: {status!r}"
                    )
                # Only kill once both readers are actively querying, so
                # the SIGKILL provably lands under concurrent reads.
                for event in served_one:
                    assert event.wait(timeout=30), "reader never got an answer"
                os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            stop = locals().get("stop")
            if stop is not None:
                stop.set()
            for thread in readers:
                thread.join(timeout=30)
                assert not thread.is_alive(), "reader thread hung"

        # The same updates through a clean scripted run, never killed.
        clean = str(tmp_path / "clean.rjn")
        script = tmp_path / "clean.txt"
        script.write_text("+ e(3, 4).\n+ e(4, 5).\n- e(1, 2).\nquit\n")
        assert cli_main(
            [
                "serve", program_file, "--facts", facts_file,
                "--script", str(script), "--journal", clean,
            ]
        ) == 0
        capsys.readouterr()

        assert cli_main(
            ["recover", program_file, journal, "--facts", facts_file]
        ) == 0
        crashed_dump = capsys.readouterr().out
        assert cli_main(
            ["recover", program_file, clean, "--facts", facts_file]
        ) == 0
        clean_dump = capsys.readouterr().out
        assert crashed_dump == clean_dump
        assert "t(2, 5)." in crashed_dump
        assert "t(1, 2)." not in crashed_dump  # the delete survived
