"""Tests for supplementary Magic Sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.adornment import adorn
from repro.datalog.parser import parse_program, parse_literal, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import magic_sets
from repro.transforms.supplementary import supplementary_magic_sets
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, random_digraph_edb

from tests.conftest import oracle_answers


def both_transforms(program, goal):
    adorned = adorn(program, goal)
    return magic_sets(adorned), supplementary_magic_sets(adorned)


class TestStructure:
    def test_supplementary_predicates_created(self):
        _, sup = both_transforms(three_rule_tc_program(), parse_query("t(5, Y)"))
        sup_preds = {
            r.head.predicate
            for r in sup.program
            if r.head.predicate.startswith("sup~")
        }
        assert sup_preds  # the recursive rules got chains

    def test_exit_rule_stays_plain(self):
        _, sup = both_transforms(three_rule_tc_program(), parse_query("t(5, Y)"))
        exit_rules = [
            r
            for r in sup.program.rules_for("t@bf")
            if not any(l.predicate.startswith("sup~") for l in r.body)
        ]
        # the exit rule keeps the guard + e(X, Y) form
        assert any(
            [l.predicate for l in r.body] == ["m_t@bf", "e"] for r in exit_rules
        )

    def test_magic_rules_read_supplementaries(self):
        _, sup = both_transforms(three_rule_tc_program(), parse_query("t(5, Y)"))
        magic_rules = [r for r in sup.program.rules_for("m_t@bf") if r.body]
        assert all(
            r.body[0].predicate.startswith(("sup~", "m_"))
            for r in magic_rules
        )


class TestSemantics:
    def test_same_answers_as_plain_magic(self):
        goal = parse_query("t(0, Y)")
        plain, sup = both_transforms(three_rule_tc_program(), goal)
        edb = random_digraph_edb(12, 30, seed=3)
        plain_db, _ = seminaive_eval(plain.program, edb)
        sup_db, _ = seminaive_eval(sup.program, edb)
        assert plain.answers(plain_db) == sup.answers(sup_db)

    def test_matches_oracle_on_chain(self):
        goal = parse_query("t(2, Y)")
        program = three_rule_tc_program()
        _, sup = both_transforms(program, goal)
        edb = chain_edb(9)
        db, _ = seminaive_eval(sup.program, edb)
        assert sup.answers(db) == oracle_answers(program, goal, edb)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 9),
        seed=st.integers(0, 30),
        source=st.integers(0, 8),
    )
    def test_random_graphs(self, n, seed, source):
        goal = parse_literal(f"t({source % n}, Y)")
        program = three_rule_tc_program()
        _, sup = both_transforms(program, goal)
        edb = random_digraph_edb(n, 2 * n, seed)
        db, _ = seminaive_eval(sup.program, edb)
        assert sup.answers(db) == oracle_answers(program, goal, edb)

    def test_multi_predicate_program(self):
        program = parse_program(
            """
            path(X, Y) :- hop(X, Y).
            path(X, Y) :- hop(X, W), link(W, U), path(U, Y).
            link(A, B) :- wire(A, B).
            """
        )
        goal = parse_query("path(0, Y)")
        _, sup = both_transforms(program, goal)
        edb = random_digraph_edb(8, 16, seed=1, relation="hop")
        edb.add_facts("wire", [(i, i) for i in range(8)])
        db, _ = seminaive_eval(sup.program, edb)
        assert sup.answers(db) == oracle_answers(program, goal, edb)
