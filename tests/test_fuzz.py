"""Fuzzing the pipeline with randomly generated unit programs.

The strongest empirical statement of Theorem 4.1 in the suite: every
generated RLC/selection-pushing program must be certified, and its
magic / factored / simplified stages must agree with the naive oracle
on random databases.  The unconstrained generator exercises rejection:
whatever the classifier accepts must still be answer-correct; whatever
it rejects is never factored.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_literal
from repro.workloads.synthetic import (
    random_edb,
    random_program,
    random_rlc_program,
)

from tests.conftest import oracle_answers


@settings(max_examples=50, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    rules=st.integers(1, 4),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
)
def test_generated_rlc_programs_factor_correctly(
    program_seed, edb_seed, rules, n, source
):
    program = random_rlc_program(program_seed, rules=rules)
    goal = parse_literal(f"p({source % n}, Y)")
    result = optimize(program, goal)
    assert result.report is not None, "classification must succeed"
    assert result.report.factorable, "grammar guarantees selection-pushing"
    edb = random_edb(edb_seed, n=n)
    expected = oracle_answers(program, goal, edb)
    for stage in ("magic", "factored", "simplified"):
        answers, _ = result.evaluate_stage(stage, edb)
        assert answers == expected, f"{stage} diverged on seed {program_seed}"


@settings(max_examples=50, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
)
def test_unconstrained_programs_never_lose_answers(
    program_seed, edb_seed, n, source
):
    """Whatever the pipeline decides, the answers must be the oracle's."""
    program = random_program(program_seed)
    goal = parse_literal(f"p({source % n}, Y)")
    result = optimize(program, goal)
    edb = random_edb(edb_seed, n=n)
    expected = oracle_answers(program, goal, edb)
    answers, _ = result.answers(edb)
    assert answers == expected


@settings(max_examples=30, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    n=st.integers(3, 8),
)
def test_instance_mode_certification_is_sound(program_seed, edb_seed, n):
    """Instance-level certification on the query's own EDB must yield
    factored programs that are correct on that EDB (the run-time check
    of Example 4.3's discussion)."""
    program = random_program(program_seed)
    goal = parse_literal("p(1, Y)")
    edb = random_edb(edb_seed, n=n)
    result = optimize(program, goal, edb=edb)
    expected = oracle_answers(program, goal, edb)
    answers, _ = result.answers(edb)
    assert answers == expected
