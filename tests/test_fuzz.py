"""Fuzzing the pipeline with randomly generated unit programs.

The strongest empirical statement of Theorem 4.1 in the suite: every
generated RLC/selection-pushing program must be certified, and its
magic / factored / simplified stages must agree with the naive oracle
on random databases.  The unconstrained generator exercises rejection:
whatever the classifier accepts must still be answer-correct; whatever
it rejects is never factored.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import optimize
from repro.datalog.parser import parse_literal, parse_program
from repro.engine.naive import naive_eval
from repro.engine.seminaive import seminaive_eval
from repro.workloads.synthetic import (
    random_edb,
    random_program,
    random_rlc_program,
)

from tests.conftest import oracle_answers


@settings(max_examples=50, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    rules=st.integers(1, 4),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
)
def test_generated_rlc_programs_factor_correctly(
    program_seed, edb_seed, rules, n, source
):
    program = random_rlc_program(program_seed, rules=rules)
    goal = parse_literal(f"p({source % n}, Y)")
    result = optimize(program, goal)
    assert result.report is not None, "classification must succeed"
    assert result.report.factorable, "grammar guarantees selection-pushing"
    edb = random_edb(edb_seed, n=n)
    expected = oracle_answers(program, goal, edb)
    for stage in ("magic", "factored", "simplified"):
        answers, _ = result.evaluate_stage(stage, edb)
        assert answers == expected, f"{stage} diverged on seed {program_seed}"


@settings(max_examples=50, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
)
def test_unconstrained_programs_never_lose_answers(
    program_seed, edb_seed, n, source
):
    """Whatever the pipeline decides, the answers must be the oracle's."""
    program = random_program(program_seed)
    goal = parse_literal(f"p({source % n}, Y)")
    result = optimize(program, goal)
    edb = random_edb(edb_seed, n=n)
    expected = oracle_answers(program, goal, edb)
    answers, _ = result.answers(edb)
    assert answers == expected


@settings(max_examples=60, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_all_backends_match_interpreter_seminaive(program_seed, edb_seed, n):
    """Six-way differential test for the compiled-plan executor.

    The legacy dict-based ``join_rule`` interpreter
    (``use_plans=False``), the greedy slot-based plans (the default),
    the cost-based planner (``planner="cost"``, statistics-driven join
    order with drift re-planning), the parallel SCC scheduler on each
    execution backend (``jobs=2`` with ``serial``, ``thread``, and
    ``process`` executors — the last shipping picklable component
    specs to worker processes that recompile plans locally) must
    derive identical fixpoints — same database, same facts/inferences/
    iterations counters — on randomized programs and databases.
    """
    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    db_interp, stats_interp = seminaive_eval(program, edb, use_plans=False)
    db_greedy, stats_greedy = seminaive_eval(program, edb, planner="greedy")
    db_cost, stats_cost = seminaive_eval(program, edb, planner="cost")
    plan_runs = [stats_greedy, stats_cost]
    assert db_greedy == db_interp, f"greedy diverged on seed {program_seed}"
    assert db_cost == db_interp, f"cost diverged on seed {program_seed}"
    for backend in ("serial", "thread", "process"):
        db_jobs, stats_jobs = seminaive_eval(
            program, edb, planner="greedy", jobs=2, backend=backend
        )
        assert db_jobs == db_interp, (
            f"jobs=2 backend={backend} diverged on seed {program_seed}"
        )
        plan_runs.append(stats_jobs)
    for stats_plan in plan_runs:
        assert stats_plan.facts == stats_interp.facts
        assert stats_plan.inferences == stats_interp.inferences
        assert stats_plan.iterations == stats_interp.iterations
        assert stats_plan.plans_compiled > 0
        assert stats_plan.scc_count == stats_interp.scc_count
    assert stats_interp.plans_compiled == 0
    assert stats_greedy.replans == 0  # greedy plans are never invalidated


@settings(max_examples=25, deadline=None)
@given(
    p_seed=st.integers(0, 10_000),
    q_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_multi_component_programs_agree_across_executors(
    p_seed, q_seed, edb_seed, n
):
    """Parallel batches genuinely execute on every backend.

    A single random unit program is one SCC, so its depth batches hold
    one component each and the parallel executors never engage.  Gluing
    two independently generated programs over disjoint recursive
    predicates (shared EDB) puts two recursive components in the same
    depth batch — the shape where ``thread`` stages writes and
    ``process`` actually ships component specs to worker processes —
    and all executors must still match the sequential interpreter
    bit-for-bit on facts/inferences/iterations.
    """
    from repro.datalog.program import Program

    program = Program(
        list(random_program(p_seed, predicate="p").rules)
        + list(random_program(q_seed, predicate="q").rules)
    )
    edb = random_edb(edb_seed, n=n)
    db_ref, stats_ref = seminaive_eval(program, edb, use_plans=False)
    for backend in ("serial", "thread", "process"):
        db, stats = seminaive_eval(program, edb, jobs=2, backend=backend)
        assert db == db_ref, f"{backend} diverged on seeds {p_seed}/{q_seed}"
        assert stats.facts == stats_ref.facts
        assert stats.inferences == stats_ref.inferences
        assert stats.iterations == stats_ref.iterations
        # Both recursive components sit in one depth batch, so the
        # parallel path (not the single-component fast path) ran.
        assert stats.scc_parallel_batches >= 1


@settings(max_examples=30, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_columnar_matches_tuple_across_backends(program_seed, edb_seed, n):
    """The columnar kernel against its tuple-at-a-time oracle.

    ``exec="columnar"`` batches interned rows through the column
    kernel; ``exec="tuple"`` is the retained oracle.  For every
    planner × backend × jobs combination the two modes must produce
    the same database **and the same counters** — facts, inferences,
    iterations, and ``probes``, the finest-grained one (the kernel
    counts a probe per batched row exactly where the executor counts
    one per tuple).  Counter parity is what keeps the two paths
    differential-testable forever: any divergence is a bug, not a
    mode difference.
    """
    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    db_ref, _ = seminaive_eval(program, edb, planner="greedy", exec="tuple")
    for kwargs in (
        {"planner": "greedy"},
        {"planner": "cost"},
        {"planner": "greedy", "jobs": 2, "backend": "serial"},
        {"planner": "greedy", "jobs": 2, "backend": "thread"},
        {"planner": "greedy", "jobs": 2, "backend": "process"},
        {"planner": "cost", "jobs": 2, "backend": "thread"},
    ):
        db_tuple, stats_tuple = seminaive_eval(
            program, edb, exec="tuple", **kwargs
        )
        db_col, stats_col = seminaive_eval(
            program, edb, exec="columnar", **kwargs
        )
        assert db_col == db_tuple == db_ref, (
            f"columnar fixpoint diverged on seed {program_seed} with {kwargs}"
        )
        for counter in ("facts", "inferences", "iterations", "probes"):
            assert getattr(stats_col, counter) == getattr(stats_tuple, counter), (
                f"{counter} diverged on seed {program_seed} with {kwargs}"
            )


@settings(max_examples=12, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_partitioned_execution_matches_unpartitioned(program_seed, edb_seed, n):
    """Hash-partitioned delta execution against the unpartitioned oracle.

    ``partitions=N`` splits each round's delta by the plan's first join
    key and runs the same compiled plan per disjoint partition, so the
    emission multiset — and with it ``facts``, ``inferences``, and
    ``iterations`` — must be bit-identical to ``partitions=1`` for
    every partition count × partition backend × execution mode.
    ``probes`` is deliberately *not* compared: shared non-delta steps
    resolve once per partition instead of once per call (the same
    caveat as DRed maintenance order under the columnar kernel).  The
    serial executor is the reference interleaving, the thread and
    process executors must reproduce it at their round barriers —
    process workers re-derive from shipped log suffixes, so this also
    checks the append-only sync protocol end to end.
    """
    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    db_ref, stats_ref = seminaive_eval(
        program, edb, planner="greedy", partitions=1
    )
    assert stats_ref.partition_rounds == 0
    for exec_mode in ("tuple", "columnar"):
        for backend in ("serial", "thread", "process"):
            for parts in (1, 2, 4):
                db, stats = seminaive_eval(
                    program,
                    edb,
                    planner="greedy",
                    exec=exec_mode,
                    backend=backend,
                    partitions=parts,
                )
                assert db == db_ref, (
                    f"partitions={parts} backend={backend} exec={exec_mode} "
                    f"diverged on seed {program_seed}"
                )
                for counter in ("facts", "inferences", "iterations"):
                    assert getattr(stats, counter) == getattr(
                        stats_ref, counter
                    ), (
                        f"{counter} diverged on seed {program_seed} with "
                        f"partitions={parts} backend={backend} exec={exec_mode}"
                    )
                if parts == 1:
                    assert stats.partition_rounds == 0
                assert stats.backend_fallbacks == 0


@settings(max_examples=15, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    script_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_columnar_maintenance_matches_tuple(
    program_seed, edb_seed, script_seed, n
):
    """Maintenance churn under the columnar kernel vs the tuple oracle.

    Two incremental sessions absorb the same random ``apply_batch``
    script, one per execution mode.  Every *pass* must agree on the
    set-determined maintenance counters — facts and re-derivations —
    plus inferences and delta rounds on insert-only passes, and both
    maintained databases must end bit-identical to a from-scratch
    evaluation of the final EDB.  (On passes with deletes only the
    set-determined counters are compared, deliberately: DRed's
    overdelete/rederive step probes, emits duplicates, and closes
    rounds in fact-enumeration order, so ``probes``, ``inferences``,
    and ``incr_rounds`` there vary with log order — between the two
    modes, and even within one mode across hash seeds.  The
    full-enumeration evaluator path asserts exact parity on every
    counter in ``test_columnar_matches_tuple_across_backends``.)
    """
    import random

    from repro.engine.incremental import IncrementalSession

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    by_mode = {
        mode: IncrementalSession(program, edb, exec=mode)
        for mode in ("tuple", "columnar")
    }
    rng = random.Random(script_seed)
    for _ in range(8):
        if rng.random() < 0.55:
            batch = dict(
                inserts=[
                    (f"e{rng.randrange(3)}", (rng.randrange(n), rng.randrange(n)))
                ]
            )
        else:
            stored = sorted(
                (sig[0], tuple(t.value for t in fact))
                for sig, rel in by_mode["tuple"].edb.relations.items()
                for fact in rel.tuples
            )
            if not stored:
                continue
            batch = dict(deletes=[stored[rng.randrange(len(stored))]])
        passes = {
            mode: session.apply_batch(**batch)
            for mode, session in by_mode.items()
        }
        counters = ("facts", "rederived")
        if "deletes" not in batch:
            counters += ("inferences", "incr_rounds")
        for counter in counters:
            assert getattr(passes["columnar"], counter) == getattr(
                passes["tuple"], counter
            ), (
                f"maintenance {counter} diverged on seeds "
                f"{program_seed}/{edb_seed}/{script_seed}"
            )
    ref, _ = seminaive_eval(program, by_mode["tuple"].edb, exec="tuple")
    for mode, session in by_mode.items():
        assert session.database == ref, (
            f"incremental exec={mode} diverged on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )


@settings(max_examples=30, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_all_backends_match_interpreter_naive(program_seed, edb_seed, n):
    """Same four-way differential property for the naive evaluator."""
    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    db_interp, stats_interp = naive_eval(program, edb, use_plans=False)
    for label, kwargs in (
        ("greedy", {"planner": "greedy"}),
        ("cost", {"planner": "cost"}),
        ("jobs=2", {"planner": "greedy", "jobs": 2}),
    ):
        db_plan, stats_plan = naive_eval(program, edb, **kwargs)
        assert db_plan == db_interp, (
            f"{label} fixpoint diverged on seed {program_seed}"
        )
        assert stats_plan.facts == stats_interp.facts
        assert stats_plan.inferences == stats_interp.inferences


@settings(max_examples=25, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    n=st.integers(3, 8),
)
def test_provenance_backends_record_identical_trees(program_seed, edb_seed, n):
    """Provenance is canonical: every backend records the same trees.

    Beyond the fixpoint/counter agreement, the plan path, the legacy
    interpreter path, the cost planner, and the parallel scheduler must
    record the exact same ``(rule, body fact keys)`` per derived fact —
    derivation recording is canonicalized, not enumeration-order
    dependent.
    """
    from repro.engine.provenance import provenance_eval

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    base = provenance_eval(program, edb, use_plans=False)
    assert base.stats.provenance_plan_ratio == 0.0
    for kwargs in (
        {},
        {"planner": "cost"},
        {"jobs": 2},
        {"jobs": 2, "backend": "process"},
    ):
        prov = provenance_eval(program, edb, **kwargs)
        assert prov.database == base.database
        assert prov.derivations == base.derivations, (
            f"derivations diverged on seed {program_seed} with {kwargs}"
        )
        assert prov.stats.facts == base.stats.facts
        assert prov.stats.inferences == base.stats.inferences
        assert prov.stats.provenance_plan_ratio == 1.0


def test_compiled_plans_match_interpreter_compound_terms():
    """Plans must agree with the interpreter on compound (list) terms.

    The recursion *deconstructs* lists (so both fixpoints are finite),
    and the rules exercise each compound-term compilation path: a
    compound pattern in the body (``suffix([H | T], L)`` with ``H``,
    ``T`` free), an all-bound probe key built from a template
    (``suffix([H | T], L)`` after ``H``/``T``/``L`` are bound), and a
    compound head template (``singleton([X])``).
    """
    program = parse_program(
        """
        suffix(L, L) :- list(L).
        suffix(T, L) :- suffix([H | T], L).
        member(H, L) :- suffix([H | T], L).
        singleton([X]) :- elem(X).
        rejoin(H, T, L) :- member(H, L), suffix(T, L), suffix([H | T], L).
        """
    )
    from repro.engine.database import Database
    from repro.datalog.parser import parse_term

    edb = Database()
    for lst in ("[]", "[a]", "[a, b]", "[b, a, c]"):
        edb.add_fact("list", (parse_term(lst),))
    for atom in ("a", "b", "c"):
        edb.add_fact("elem", (parse_term(atom),))

    for evaluator in (seminaive_eval, naive_eval):
        db_plan, stats_plan = evaluator(program, edb, max_iterations=30)
        db_interp, stats_interp = evaluator(
            program, edb, max_iterations=30, use_plans=False
        )
        assert db_plan == db_interp
        assert stats_plan.facts == stats_interp.facts
        assert stats_plan.inferences == stats_interp.inferences
        assert db_plan.get("member", 2) is not None
        assert len(db_plan.get("member", 2)) > 0


@settings(max_examples=40, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
)
def test_evaluators_match_scheduler_free_reference(
    program_seed, edb_seed, n, source
):
    """Oracle independence: two evaluation stacks that share nothing.

    Every scheduled evaluator — including ``naive_eval``, the suite's
    usual oracle — runs through the same ``SCCScheduler``, so a
    stratification or batching bug would hit oracle and testee alike.
    ``naive_fixpoint_reference`` shares none of that machinery (no
    dependency graph, no components, no compiled plans: whole-program
    rounds through the legacy interpreter), and the tabled top-down
    engine shares no bottom-up code at all.  All three must agree on
    randomized programs and databases.
    """
    from repro.engine.naive import naive_fixpoint_reference
    from repro.engine.topdown import topdown_eval

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    ref_db, ref_stats = naive_fixpoint_reference(program, edb)
    for label, evaluate in (("naive", naive_eval), ("seminaive", seminaive_eval)):
        db, _ = evaluate(program, edb)
        assert db == ref_db, (
            f"{label} diverged from the scheduler-free reference "
            f"on seed {program_seed}"
        )
    goal = parse_literal(f"p({source % n}, Y)")
    top_down = topdown_eval(program, edb, goal)
    assert top_down.answers == ref_db.query(goal), (
        f"top-down diverged on seed {program_seed}"
    )
    assert ref_stats.plans_compiled == 0
    assert ref_stats.scc_count == 0


@settings(max_examples=20, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    script_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_incremental_scripts_match_scratch(program_seed, edb_seed, script_seed, n):
    """Randomized insert/delete scripts against incremental maintenance.

    One random program, one random EDB, one random script of EDB
    inserts and deletes.  Sessions under every maintenance
    configuration — compiled plans (greedy and cost planners), the
    legacy interpreter, the parallel scheduler, and provenance
    recording — absorb the script; each must end bit-identical to a
    from-scratch ``seminaive_eval`` on the final EDB, and the
    provenance session's derivations must equal a from-scratch
    ``provenance_eval``'s.  (The process backend and ``jobs`` matrix is
    exercised deterministically in ``tests/test_incremental.py``.)
    """
    import random

    from repro.engine.incremental import IncrementalSession
    from repro.engine.provenance import provenance_eval

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    sessions = [
        IncrementalSession(program, edb),
        IncrementalSession(program, edb, planner="cost"),
        IncrementalSession(program, edb, use_plans=False),
        IncrementalSession(program, edb, jobs=2, backend="thread"),
        IncrementalSession(program, edb, record_provenance=True),
    ]
    rng = random.Random(script_seed)
    for _ in range(10):
        if rng.random() < 0.55:
            if rng.random() < 0.8:
                update = (f"e{rng.randrange(3)}", (rng.randrange(n), rng.randrange(n)))
            else:
                update = (f"r{rng.randrange(3)}", (rng.randrange(n),))
            edb.add_fact(*update)
            for session in sessions:
                session.insert([update])
        else:
            stored = sorted(
                (sig[0], tuple(t.value for t in fact))
                for sig, rel in edb.relations.items()
                for fact in rel.tuples
            )
            if not stored:
                continue
            update = stored[rng.randrange(len(stored))]
            edb.remove_fact(*update)
            for session in sessions:
                session.delete([update])
    ref, _ = seminaive_eval(program, edb)
    labels = ("greedy", "cost", "interpreter", "jobs2", "provenance")
    for label, session in zip(labels, sessions):
        assert session.database == ref, (
            f"incremental {label} diverged on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )
    prov_ref = provenance_eval(program, edb)
    assert sessions[-1]._derivations == prov_ref.derivations, (
        f"incremental derivations diverged on seeds "
        f"{program_seed}/{edb_seed}/{script_seed}"
    )


@settings(max_examples=20, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    n=st.integers(3, 8),
    source=st.integers(0, 7),
    bind_second=st.booleans(),
)
def test_query_goal_matches_filtered_materialization(
    program_seed, edb_seed, n, source, bind_second
):
    """The goal-directed serving path against the materialize oracle.

    Whatever strategy :class:`~repro.engine.query.QueryCompiler` picks
    for a random program and goal — factored, counting (with its
    divergence fallback to magic), or plain magic — the answers must
    equal filtering a full ``seminaive_eval`` fixpoint with the goal,
    on every backend × planner combination.  The compiler is built once
    per combination and asked twice (second constant shifted), so the
    cached compiled form is also exercised.
    """
    from repro.engine.query import QueryCompiler

    program = random_program(program_seed)
    constant = source % n
    goal_text = f"p(X, {constant})" if bind_second else f"p({constant}, Y)"
    goal = parse_literal(goal_text)
    edb = random_edb(edb_seed, n=n)
    full, _ = seminaive_eval(program, edb)
    expected = full.query(goal)
    shifted = parse_literal(
        f"p(X, {(constant + 1) % n})"
        if bind_second
        else f"p({(constant + 1) % n}, Y)"
    )
    expected_shifted = full.query(shifted)
    for backend in ("serial", "thread", "process"):
        for planner in ("greedy", "cost"):
            compiler = QueryCompiler(
                program, planner=planner, jobs=2, backend=backend
            )
            answer = compiler.ask(goal, edb)
            assert answer.answers == expected, (
                f"query_goal diverged on seed {program_seed} "
                f"({backend}/{planner}, strategy {answer.strategy})"
            )
            again = compiler.ask(shifted, edb)
            assert again.answers == expected_shifted, (
                f"cached form diverged on seed {program_seed} "
                f"({backend}/{planner})"
            )
            assert again.from_cache or again.strategy in ("edb", "materialize")


@settings(max_examples=15, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    script_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_query_goal_tracks_churn(program_seed, edb_seed, script_seed, n):
    """Goal-directed answers stay fresh under maintenance batches.

    A random insert/delete script drives ``apply_batch`` on an
    incremental session; after every batch, ``query_goal`` (which
    bypasses the materialization and re-derives from the EDB) must
    agree with the maintained database's own answer — i.e. compiled-
    query caching must be invalidated exactly when the EDB changes.
    """
    import random

    from repro.engine.incremental import IncrementalSession

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    session = IncrementalSession(program, edb, planner="cost")
    rng = random.Random(script_seed)
    goal = parse_literal(f"p({rng.randrange(n)}, Y)")
    assert session.query_goal(goal) == session.query(goal)
    for _ in range(6):
        if rng.random() < 0.6:
            update = (f"e{rng.randrange(3)}", (rng.randrange(n), rng.randrange(n)))
            session.apply_batch(inserts=[update])
        else:
            stored = sorted(
                (sig[0], tuple(t.value for t in fact))
                for sig, rel in session.edb.relations.items()
                for fact in rel.tuples
            )
            if not stored:
                continue
            session.apply_batch(deletes=[stored[rng.randrange(len(stored))]])
        assert session.query_goal(goal) == session.query(goal), (
            f"stale compiled query after churn on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )


@settings(max_examples=30, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    n=st.integers(3, 8),
)
def test_instance_mode_certification_is_sound(program_seed, edb_seed, n):
    """Instance-level certification on the query's own EDB must yield
    factored programs that are correct on that EDB (the run-time check
    of Example 4.3's discussion)."""
    program = random_program(program_seed)
    goal = parse_literal("p(1, Y)")
    edb = random_edb(edb_seed, n=n)
    result = optimize(program, goal, edb=edb)
    expected = oracle_answers(program, goal, edb)
    answers, _ = result.answers(edb)
    assert answers == expected


@settings(max_examples=25, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    batch_seed=st.integers(0, 10_000),
    nth=st.integers(1, 3),
    n=st.integers(3, 8),
    provenance=st.booleans(),
)
def test_injected_faults_never_leave_intermediate_state(
    program_seed, edb_seed, batch_seed, nth, n, provenance
):
    """The differential fault property (the PR's robustness fuzz).

    One random program, one random EDB, one random mixed batch, and a
    fault injected at a random component boundary.  Whatever happens —
    the fault fires mid-batch or the batch finishes before boundary
    ``nth`` — the session must sit on exactly one of two states: the
    from-scratch fixpoint of the *pre-batch* EDB (fault fired, batch
    rolled back) or of the *post-batch* EDB (batch committed).  Never
    anything in between, and a faultless retry always reaches the
    post-batch oracle.
    """
    import random

    from repro.engine import faults
    from repro.engine.incremental import IncrementalSession
    from repro.engine.provenance import provenance_eval
    from repro.engine.stats import MaintenanceError

    program = random_program(program_seed)
    pre_edb = random_edb(edb_seed, n=n)
    session = IncrementalSession(
        program, pre_edb, record_provenance=provenance
    )

    rng = random.Random(batch_seed)
    inserts = [
        (f"e{rng.randrange(3)}", (rng.randrange(n), rng.randrange(n)))
        for _ in range(rng.randrange(1, 4))
    ]
    stored = sorted(
        (sig[0], tuple(t.value for t in fact))
        for sig, rel in pre_edb.relations.items()
        for fact in rel.tuples
    )
    deletes = [stored[rng.randrange(len(stored))]] if stored else []

    post_edb = random_edb(edb_seed, n=n)
    for pred, args in deletes:
        post_edb.remove_fact(pred, args)
    for pred, args in inserts:
        post_edb.add_fact(pred, args)

    pre_oracle, _ = seminaive_eval(program, pre_edb)
    post_oracle, _ = seminaive_eval(program, post_edb)

    try:
        faults.install(
            faults.parse_faults(f"component:raise:{nth}")
        )
        try:
            session.apply_batch(inserts=inserts, deletes=deletes or None)
        except MaintenanceError:
            # Fault fired mid-batch: rolled back to the pre-batch oracle.
            assert session.database == pre_oracle, (
                f"intermediate state survived a fault on seeds "
                f"{program_seed}/{edb_seed}/{batch_seed} nth={nth}"
            )
        else:
            # The batch finished before boundary ``nth`` was reached.
            assert session.database == post_oracle
        faults.install(None)
        # A faultless retry always lands on the post-batch oracle
        # (re-applying a committed batch is idempotent).
        session.apply_batch(inserts=inserts, deletes=deletes or None)
        assert session.database == post_oracle, (
            f"retry diverged on seeds "
            f"{program_seed}/{edb_seed}/{batch_seed} nth={nth}"
        )
        if provenance:
            prov_ref = provenance_eval(program, post_edb)
            assert session._derivations == prov_ref.derivations
    finally:
        faults.clear()


@settings(max_examples=10, deadline=None)
@given(
    program_seed=st.integers(0, 10_000),
    edb_seed=st.integers(0, 2_000),
    script_seed=st.integers(0, 10_000),
    n=st.integers(3, 8),
)
def test_served_churn_matches_bare_session(
    program_seed, edb_seed, script_seed, n
):
    """Concurrent-churn differential for the serving layer.

    The same randomized insert/delete script runs through a
    :class:`~repro.engine.server.DatalogServer` front — with reader
    threads hammering pinned views the whole time — and through a bare
    :class:`IncrementalSession`, across serial/thread backends ×
    columnar/tuple execution.  The served sessions must end
    bit-identical to the bare ones (the reader traffic is pure
    observation), and every published view must equal the final
    from-scratch oracle once the script drains.
    """
    import random
    import threading

    from repro.engine.incremental import IncrementalSession
    from repro.engine.server import DatalogServer

    program = random_program(program_seed)
    edb = random_edb(edb_seed, n=n)
    configs = [
        dict(),
        dict(exec="tuple"),
        dict(jobs=2, backend="thread"),
        dict(jobs=2, backend="thread", exec="tuple"),
    ]
    servers = [
        DatalogServer(IncrementalSession(program, edb, **cfg))
        for cfg in configs
    ]
    bare = [IncrementalSession(program, edb, **cfg) for cfg in configs]

    done = threading.Event()
    errors = []

    def reader():
        try:
            while not done.is_set():
                for server in servers:
                    server.view().query("p(X, Y)")
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [threading.Thread(target=reader, daemon=True) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        rng = random.Random(script_seed)
        for _ in range(10):
            if rng.random() < 0.55:
                if rng.random() < 0.8:
                    update = (
                        f"e{rng.randrange(3)}",
                        (rng.randrange(n), rng.randrange(n)),
                    )
                else:
                    update = (f"r{rng.randrange(3)}", (rng.randrange(n),))
                edb.add_fact(*update)
                for server in servers:
                    server.insert([update])
                for session in bare:
                    session.insert([update])
            else:
                stored = sorted(
                    (sig[0], tuple(t.value for t in fact))
                    for sig, rel in edb.relations.items()
                    for fact in rel.tuples
                )
                if not stored:
                    continue
                update = stored[rng.randrange(len(stored))]
                edb.remove_fact(*update)
                for server in servers:
                    server.delete([update])
                for session in bare:
                    session.delete([update])
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=30)
    assert not errors, errors
    for thread in threads:
        assert not thread.is_alive(), "reader thread hung"

    ref, _ = seminaive_eval(program, edb)
    labels = ("serial+col", "serial+tuple", "thread+col", "thread+tuple")
    for label, server, session in zip(labels, servers, bare):
        assert server.session.database == session.database, (
            f"served {label} diverged from bare on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )
        assert server.session.database == ref, (
            f"served {label} diverged from scratch on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )
        assert server.view().database == ref, (
            f"published view {label} diverged on seeds "
            f"{program_seed}/{edb_seed}/{script_seed}"
        )
