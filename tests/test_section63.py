"""Tests for Section 6.3: the [9] rewritings equal Magic + factoring."""

import pytest

from repro.analysis.isomorphism import programs_isomorphic
from repro.core.pipeline import optimize
from repro.core.section63 import NotLinearError, rewrite_linear
from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.workloads.graphs import chain_edb, random_digraph_edb

from tests.conftest import oracle_answers

RIGHT_TC = parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).")
LEFT_TC = parse_program("t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y).")
MIXED = parse_program(
    """
    t(X, Y) :- t(X, W), e(W, Y).
    t(X, Y) :- e(X, W), t(W, Y).
    t(X, Y) :- e(X, Y).
    """
)


class TestRewriteLinear:
    @pytest.mark.parametrize("program", [RIGHT_TC, LEFT_TC, MIXED])
    def test_answers_match_oracle(self, program):
        goal = parse_query("t(0, Y)")
        rewritten, query_head = rewrite_linear(program, goal)
        edb = random_digraph_edb(10, 25, seed=6)
        db, _ = seminaive_eval(rewritten, edb)
        assert db.query(query_head) == oracle_answers(program, goal, edb)

    @pytest.mark.parametrize(
        "program", [RIGHT_TC, LEFT_TC, MIXED], ids=["right", "left", "mixed"]
    )
    def test_identical_to_magic_plus_factoring(self, program):
        """Section 6.3: 'the Magic Sets plus factoring transformation
        produces the same final program as the rewriting algorithms
        from that paper' — as a program isomorphism."""
        goal = parse_query("t(0, Y)")
        rewritten, _ = rewrite_linear(program, goal)
        pipeline = optimize(program, goal)
        assert pipeline.report.factorable
        assert programs_isomorphic(rewritten, pipeline.simplified.program)

    def test_right_linear_shape(self):
        rewritten, _ = rewrite_linear(RIGHT_TC, parse_query("t(5, Y)"))
        rules = {str(r) for r in rewritten}
        assert rules == {
            "m_t@bf(5).",
            "m_t@bf(W) :- m_t@bf(X), e(X, W).",
            "f_t@bf(Y) :- m_t@bf(X), e(X, Y).",
            "query(Y) :- f_t@bf(Y).",
        }

    def test_left_linear_shape(self):
        rewritten, _ = rewrite_linear(LEFT_TC, parse_query("t(5, Y)"))
        rules = {str(r) for r in rewritten}
        assert rules == {
            "m_t@bf(5).",
            "f_t@bf(Y) :- m_t@bf(X), e(X, Y).",
            "f_t@bf(Y) :- f_t@bf(W), e(W, Y).",
            "query(Y) :- f_t@bf(Y).",
        }

    def test_combined_rejected(self):
        nonlinear = parse_program(
            "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y)."
        )
        with pytest.raises(NotLinearError):
            rewrite_linear(nonlinear, parse_query("t(0, Y)"))

    def test_side_conjunction_rejected(self):
        guarded = parse_program(
            "t(X, Y) :- e(X, W), t(W, Y), r(Y).\nt(X, Y) :- e(X, Y)."
        )
        with pytest.raises(NotLinearError):
            rewrite_linear(guarded, parse_query("t(0, Y)"))

    def test_multi_left_linear(self):
        multi = parse_program(
            """
            t(X, Y) :- t(X, U), t(X, V), both(U, V, Y).
            t(X, Y) :- e(X, Y).
            """
        )
        goal = parse_query("t(0, Y)")
        rewritten, query_head = rewrite_linear(multi, goal)
        edb = chain_edb(4)
        edb.add_facts("both", [(1, 2, 9), (2, 3, 11)])
        db, _ = seminaive_eval(rewritten, edb)
        assert db.query(query_head) == oracle_answers(multi, goal, edb)
