"""Unit tests for repro.datalog.terms."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.terms import (
    NIL,
    Compound,
    Constant,
    Variable,
    cons,
    constants_in,
    fresh_variable,
    is_ground,
    is_list_term,
    list_elements,
    make_list,
    term_variables,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_not_ground(self):
        assert not Variable("X").is_ground()

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Variable("X").name = "Y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str(self):
        assert str(Variable("Abc")) == "Abc"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(5) == Constant(5)
        assert Constant(5) != Constant("5")

    def test_ground(self):
        assert Constant("a").is_ground()

    def test_no_variables(self):
        assert list(Constant(1).variables()) == []

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Constant(1).value = 2

    def test_distinct_from_variable(self):
        assert Constant("X") != Variable("X")


class TestCompound:
    def test_interning(self):
        a = Compound("f", (Constant(1), Variable("X")))
        b = Compound("f", (Constant(1), Variable("X")))
        assert a is b

    def test_distinct_functors_not_interned_together(self):
        a = Compound("f", (Constant(1),))
        b = Compound("g", (Constant(1),))
        assert a is not b and a != b

    def test_groundness(self):
        assert Compound("f", (Constant(1),)).is_ground()
        assert not Compound("f", (Variable("X"),)).is_ground()

    def test_variables_nested(self):
        term = Compound("f", (Compound("g", (Variable("X"),)), Variable("Y")))
        assert [v.name for v in term_variables(term)] == ["X", "Y"]

    def test_immutable(self):
        term = Compound("f", (Constant(1),))
        with pytest.raises(AttributeError):
            term.functor = "g"


class TestLists:
    def test_make_and_decompose(self):
        elements = [Constant(i) for i in range(3)]
        lst = make_list(elements)
        back, tail = list_elements(lst)
        assert back == elements
        assert tail == NIL

    def test_partial_list(self):
        tail = Variable("T")
        lst = make_list([Constant(1)], tail)
        back, got_tail = list_elements(lst)
        assert back == [Constant(1)]
        assert got_tail == tail

    def test_empty_list(self):
        assert make_list([]) == NIL
        assert list_elements(NIL) == ([], NIL)

    def test_is_list_term(self):
        assert is_list_term(NIL)
        assert is_list_term(cons(Constant(1), NIL))
        assert not is_list_term(Constant(1))

    def test_suffix_sharing(self):
        """Structure sharing: building [0|t] twice reuses one object."""
        suffix = make_list([Constant(i) for i in range(5)])
        a = cons(Constant(0), suffix)
        b = cons(Constant(0), suffix)
        assert a is b
        assert a.args[1] is suffix


class TestHelpers:
    def test_fresh_variables_distinct(self):
        assert fresh_variable() != fresh_variable()

    def test_fresh_variable_prefix(self):
        assert fresh_variable("Q").name.startswith("Q#")

    def test_term_variables_dedup_order(self):
        x, y = Variable("X"), Variable("Y")
        term = Compound("f", (x, y, x))
        assert term_variables(term) == [x, y]

    def test_constants_in(self):
        term = Compound("f", (Constant(1), Compound("g", (Constant(2),))))
        assert set(constants_in(term)) == {Constant(1), Constant(2)}

    def test_is_ground_helper(self):
        assert is_ground(Constant(1))
        assert not is_ground(Variable("X"))


@given(st.lists(st.integers(), max_size=8))
def test_list_roundtrip_property(values):
    """make_list / list_elements are inverse on proper lists."""
    terms = [Constant(v) for v in values]
    lst = make_list(terms)
    back, tail = list_elements(lst)
    assert back == terms and tail == NIL
    assert lst.is_ground() if values else lst == NIL
