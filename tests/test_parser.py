"""Unit tests for the parser and pretty-printer (round-trip included)."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.literals import Literal
from repro.datalog.parser import (
    ParseError,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
    parse_term,
)
from repro.datalog.pretty import pretty_program, pretty_rule, pretty_term
from repro.datalog.rules import Rule
from repro.datalog.terms import NIL, Compound, Constant, Variable, make_list


class TestTermParsing:
    def test_variable(self):
        assert parse_term("X") == Variable("X")
        assert parse_term("Xyz_1") == Variable("Xyz_1")

    def test_anonymous_variables_fresh(self):
        rule = parse_rule("p(X) :- q(_, _), r(X).")
        args = rule.body[0].args
        assert args[0] != args[1]

    def test_integer(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("-3") == Constant(-3)

    def test_atom(self):
        assert parse_term("abc") == Constant("abc")

    def test_quoted_atom(self):
        assert parse_term("'Hello world'") == Constant("Hello world")

    def test_compound(self):
        assert parse_term("f(X, 1)") == Compound("f", (Variable("X"), Constant(1)))

    def test_nested_compound(self):
        term = parse_term("f(g(X), h(1, a))")
        assert term.functor == "f"
        assert term.args[0] == Compound("g", (Variable("X"),))

    def test_list(self):
        assert parse_term("[]") == NIL
        assert parse_term("[1, 2]") == make_list([Constant(1), Constant(2)])

    def test_list_with_tail(self):
        term = parse_term("[H | T]")
        assert term == Compound(".", (Variable("H"), Variable("T")))

    def test_bad_term(self):
        with pytest.raises(ParseError):
            parse_term(")")


class TestRuleParsing:
    def test_fact(self):
        rule = parse_rule("e(1, 2).")
        assert rule.is_fact()
        assert rule.head == Literal("e", (Constant(1), Constant(2)))

    def test_rule(self):
        rule = parse_rule("t(X, Y) :- e(X, Y).")
        assert rule.head.predicate == "t"
        assert len(rule.body) == 1

    def test_propositional(self):
        rule = parse_rule("go :- ready.")
        assert rule.head.arity == 0

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_rule("t(X, Y) :- e(X, Y)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_rule("a. b")

    def test_comment_handling(self):
        program = parse_program("% comment\ne(1, 2). % inline\n")
        assert len(program) == 1

    def test_generated_names_parse(self):
        rule = parse_rule("m_t@bf(X) :- f_t@bf(X).")
        assert rule.head.predicate == "m_t@bf"


class TestQueryParsing:
    def test_query_with_question_mark(self):
        assert parse_query("t(5, Y)?") == Literal("t", (Constant(5), Variable("Y")))

    def test_query_plain(self):
        assert parse_query("t(5, Y)") == parse_query("t(5, Y).")


class TestRoundTrip:
    CASES = [
        "t(X, Y) :- t(X, W), t(W, Y).",
        "e(1, 2).",
        "pmem(X, [X | T]) :- p(X).",
        "q(X) :- pmem(X, [1, 2, 3]).",
        "go :- ready, steady.",
        "p(X) :- f(g(X), [a, b | T]).",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        rule = parse_rule(text)
        assert parse_rule(pretty_rule(rule)) == rule

    def test_program_roundtrip(self):
        from repro.workloads.examples import three_rule_tc_program

        program = three_rule_tc_program()
        assert parse_program(pretty_program(program)) == program


# -- property-based round trip over generated terms --------------------

_atoms = st.sampled_from(["a", "b", "edge", "node1"])
_variables = st.sampled_from(["X", "Y", "Z", "Long_name"])


def _terms(depth=2):
    base = st.one_of(
        _atoms.map(Constant),
        st.integers(-50, 50).map(Constant),
        _variables.map(Variable),
    )
    if depth == 0:
        return base
    return st.one_of(
        base,
        st.builds(
            Compound,
            st.sampled_from(["f", "g"]),
            st.lists(_terms(depth - 1), min_size=1, max_size=3).map(tuple),
        ),
        st.lists(_terms(depth - 1), max_size=3).map(make_list),
    )


@given(_terms())
def test_term_roundtrip_property(term):
    assert parse_term(pretty_term(term)) == term


@given(
    st.lists(
        st.builds(
            Literal,
            st.sampled_from(["p", "q", "r"]),
            st.lists(_terms(1), max_size=3).map(tuple),
        ),
        min_size=1,
        max_size=4,
    )
)
def test_rule_roundtrip_property(literals):
    rule = Rule(literals[0], literals[1:])
    assert parse_rule(pretty_rule(rule)) == rule
