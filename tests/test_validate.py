"""Tests for the program linter."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.validate import Severity, validate_program


def codes(report):
    return {d.code for d in report.diagnostics}


class TestValidate:
    def test_clean_program(self):
        report = validate_program(
            parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")
        )
        # only the sink-predicate note for t (the query root)
        assert codes(report) <= {"sink-predicate"}
        assert report.ok

    def test_unsafe_rule_flagged(self):
        report = validate_program(parse_program("p(X, T) :- q(X)."))
        assert "unsafe-rule" in codes(report)
        assert report.ok  # warning, not error

    def test_pmem_flagged_as_unsafe(self):
        from repro.workloads.lists import pmem_program

        report = validate_program(pmem_program())
        assert "unsafe-rule" in codes(report)

    def test_arity_conflict(self):
        report = validate_program(
            parse_program("p(X) :- e(X, Y), e(X).")
        )
        assert "arity-conflict" in codes(report)

    def test_tautological_rule(self):
        report = validate_program(
            parse_program("p(X) :- p(X), e(X).")
        )
        assert "tautological-rule" in codes(report)

    def test_singleton_variable(self):
        report = validate_program(parse_program("p(X) :- e(X, Orphan)."))
        assert "singleton-variable" in codes(report)

    def test_anonymous_not_flagged(self):
        report = validate_program(parse_program("p(X) :- e(X, _)."))
        assert "singleton-variable" not in codes(report)

    def test_sink_predicate_noted(self):
        report = validate_program(
            parse_program("a(X) :- e(X).\nb(X) :- a(X).")
        )
        sink_messages = [
            d.message for d in report.diagnostics if d.code == "sink-predicate"
        ]
        assert any("b/1" in m for m in sink_messages)
        assert not any("a/1" in m for m in sink_messages)

    def test_raise_on_error_passes_for_warnings(self):
        report = validate_program(parse_program("p(X) :- e(X, Unused)."))
        report.raise_on_error()  # warnings only: no raise

    def test_str_rendering(self):
        report = validate_program(parse_program("p(X) :- e(X, Orphan)."))
        assert "singleton-variable" in str(report)
        assert str(validate_program(parse_program("a(X) :- e(X).")))
