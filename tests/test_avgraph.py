"""Tests for A/V graphs and one-sided recursions (Section 6.1)."""

import pytest

from repro.analysis.avgraph import (
    build_av_graph,
    expand_rule,
    is_one_sided,
    is_simple_one_sided,
)
from repro.datalog.parser import parse_rule
from repro.engine.database import Database
from repro.engine.naive import naive_eval
from repro.datalog.program import Program
from repro.datalog.parser import parse_program, parse_literal


class TestAVGraph:
    def test_left_linear_tc(self):
        rule = parse_rule("t(X, Y) :- t(X, W), e(W, Y).")
        graph = build_av_graph(rule, "t")
        assert (0, 0) in graph.edges  # X fixed: weight-1 self-loop
        assert len(graph.components) == 2

    def test_right_linear_tc(self):
        rule = parse_rule("t(X, Y) :- e(X, U), t(U, Y).")
        graph = build_av_graph(rule, "t")
        assert (1, 1) in graph.edges

    def test_swap_rule_weight_two_cycle(self):
        rule = parse_rule("t(X, Y) :- t(Y, X).")
        graph = build_av_graph(rule, "t")
        component = graph.component_of(0)
        assert graph.cycle_weights(component) == {2}

    def test_nonlinear_rejected(self):
        rule = parse_rule("t(X, Y) :- t(X, W), t(W, Y).")
        with pytest.raises(ValueError):
            build_av_graph(rule, "t")


class TestOneSided:
    def test_tc_rules_one_sided(self):
        assert is_one_sided(parse_rule("t(X, Y) :- t(X, W), e(W, Y)."), "t")
        assert is_one_sided(parse_rule("t(X, Y) :- e(X, U), t(U, Y)."), "t")

    def test_swap_not_one_sided(self):
        assert not is_one_sided(parse_rule("t(X, Y) :- t(Y, X)."), "t")

    def test_both_sides_moving_not_one_sided(self):
        # both argument components carry nonzero cycles
        rule = parse_rule("t(X, Y) :- a(X, U), t(U, V), b(V, Y).")
        assert not is_one_sided(rule, "t")

    def test_example_71_one_sided(self):
        rule = parse_rule("t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).")
        assert is_one_sided(rule, "t")
        assert is_simple_one_sided(rule, "t")

    def test_multi_fixed_positions(self):
        rule = parse_rule("t(X, Y, Z) :- t(X, Y, W), e(W, Z).")
        assert is_one_sided(rule, "t")


class TestExpansion:
    def test_expansion_preserves_semantics(self):
        """rule ∪ expanded computes the same closure as rule twice-unrolled."""
        rule = parse_rule("t(X, Y) :- t(X, W), e(W, Y).")
        exit_rule = parse_rule("t(X, Y) :- e(X, Y).")
        expanded = expand_rule(rule, "t", 1)
        # expanded should have two e literals and one t literal
        assert len(expanded.body_literals("e")) == 2
        assert len(expanded.body_literals("t")) == 1

        edb = Database.from_dict({"e": [(i, i + 1) for i in range(6)]})
        base, _ = naive_eval(Program([rule, exit_rule]), edb)
        # Expanded program: the expansion plus the originals (it skips
        # odd path lengths on its own, so compare combined fixpoints).
        both, _ = naive_eval(Program([rule, exit_rule, expanded]), edb)
        assert base.facts("t") == both.facts("t")

    def test_expand_zero_is_identity(self):
        rule = parse_rule("t(X, Y) :- t(X, W), e(W, Y).")
        assert expand_rule(rule, "t", 0) == rule

    def test_expand_nonlinear_raises(self):
        rule = parse_rule("t(X, Y) :- t(X, W), t(W, Y).")
        with pytest.raises(ValueError):
            expand_rule(rule, "t")
