"""Tests for derivation trees (Definition 2.1) and fact explanation."""

import pytest

from repro.datalog.parser import parse_literal, parse_program
from repro.engine.database import Database
from repro.engine.provenance import DerivationTree, explain, provenance_eval
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import NonTerminationError
from repro.workloads.graphs import chain_edb

TC = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")


class TestProvenanceEval:
    def test_same_model_as_seminaive(self):
        edb = chain_edb(6)
        prov = provenance_eval(TC, edb)
        semi, _ = seminaive_eval(TC, edb)
        assert prov.database == semi

    def test_every_derived_fact_has_a_record(self):
        edb = chain_edb(5)
        prov = provenance_eval(TC, edb)
        for fact in prov.database.facts("t"):
            tree = prov.explain(parse_literal("t(X, Y)").with_args(fact))
            assert tree.fact.predicate == "t"

    def test_budget(self):
        diverging = parse_program("p(s(X)) :- p(X).")
        edb = Database()
        edb.add_fact("p", (0,))
        with pytest.raises(NonTerminationError):
            provenance_eval(diverging, edb, max_facts=20)


class TestExplain:
    def test_edb_leaf(self):
        edb = chain_edb(4)
        prov = provenance_eval(TC, edb)
        tree = prov.explain(parse_literal("e(0, 1)"))
        assert tree.rule is None and tree.children == ()
        assert tree.height() == 1

    def test_one_step_derivation(self):
        tree = explain(TC, chain_edb(4), parse_literal("t(0, 1)"))
        assert tree.rule is not None
        assert [c.fact for c in tree.children] == [parse_literal("e(0, 1)")]
        assert tree.height() == 2

    def test_deep_derivation_structure(self):
        tree = explain(TC, chain_edb(5), parse_literal("t(0, 4)"))
        # right-linear recursion: leaves are exactly the chain's edges
        leaves = tree.leaves()
        assert set(leaves) == {
            parse_literal(f"e({i}, {i + 1})") for i in range(4)
        }
        assert tree.height() == 5  # one rule application per edge + leaf

    def test_minimal_height_rounds(self):
        """The recorded tree uses the earliest derivation round."""
        # two ways to derive t(0, 2): direct edge or via the chain.
        edb = chain_edb(3)
        edb.add_fact("e", (0, 2))
        tree = explain(TC, edb, parse_literal("t(0, 2)"))
        assert tree.height() == 2  # the direct edge, found in round one

    def test_unknown_fact(self):
        prov = provenance_eval(TC, chain_edb(3))
        with pytest.raises(KeyError):
            prov.explain(parse_literal("t(2, 0)"))

    def test_nonground_fact_rejected(self):
        prov = provenance_eval(TC, chain_edb(3))
        with pytest.raises(ValueError):
            prov.explain(parse_literal("t(0, Y)"))

    def test_render(self):
        tree = explain(TC, chain_edb(3), parse_literal("t(0, 2)"))
        text = tree.render()
        assert "t(0, 2)" in text and "e(" in text and "[via" in text

    def test_tree_size(self):
        tree = explain(TC, chain_edb(4), parse_literal("t(0, 3)"))
        assert tree.size() == tree.render().count("\n") + 1

    def test_seed_fact_rules(self):
        program = parse_program("m(5).\nm(Y) :- m(X), e(X, Y).")
        prov = provenance_eval(program, chain_edb(8))
        tree = prov.explain(parse_literal("m(7)"))
        # the chain of magic derivations bottoms out at the seed rule
        node = tree
        while node.children:
            node = [c for c in node.children if c.fact.predicate == "m"][0]
        assert node.fact == parse_literal("m(5)")
        assert node.rule is not None and not node.rule.body


class TestPlanProvenance:
    """Plan-level provenance: compiled plans vs. the legacy interpreter."""

    def _assert_identical(self, program, edb, **kwargs):
        legacy = provenance_eval(program, edb, use_plans=False)
        plans = provenance_eval(program, edb, **kwargs)
        assert plans.database == legacy.database
        # same roots, same per-fact rule + body keys
        assert plans.derivations == legacy.derivations
        assert plans.stats.facts == legacy.stats.facts
        assert plans.stats.inferences == legacy.stats.inferences
        return legacy, plans

    def test_identical_trees_on_tc_chain(self):
        self._assert_identical(TC, chain_edb(8))

    def test_identical_trees_on_same_generation(self):
        from repro.workloads.examples import (
            same_generation_edb,
            same_generation_program,
        )

        self._assert_identical(
            same_generation_program(), same_generation_edb(4, 2)
        )

    def test_identical_trees_under_cost_planner_and_jobs(self):
        self._assert_identical(TC, chain_edb(8), planner="cost")
        self._assert_identical(TC, chain_edb(8), jobs=2)

    def test_identical_trees_on_factored_pipeline_output(self):
        from repro.core.pipeline import optimize
        from repro.datalog.parser import parse_query
        from repro.workloads.examples import three_rule_tc_program

        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        self._assert_identical(result.simplified.program, chain_edb(5))

    def test_plan_ratio_reported(self):
        assert provenance_eval(TC, chain_edb(4)).stats.provenance_plan_ratio == 1.0
        assert (
            provenance_eval(TC, chain_edb(4), use_plans=False)
            .stats.provenance_plan_ratio
            == 0.0
        )

    def test_edb_keys_are_lazy(self):
        """EDB membership is answered by the relations, not a flat copy."""
        from repro.engine.provenance import EdbKeyView

        edb = chain_edb(6)
        prov = provenance_eval(TC, edb)
        assert isinstance(prov.edb_keys, EdbKeyView)
        some_edge = next(iter(edb.relation("e", 2)))
        assert ("e", 2, some_edge) in prov.edb_keys
        assert ("e", 2, ("nope", "nope")) not in prov.edb_keys
        assert len(prov.edb_keys) == len(edb.relation("e", 2))
        assert ("e", 2, some_edge) in set(iter(prov.edb_keys))


class TestFactoredProvenance:
    def test_explain_factored_answer(self):
        """Provenance composes with the optimizer's output programs."""
        from repro.core.pipeline import optimize
        from repro.datalog.parser import parse_query

        from repro.workloads.examples import three_rule_tc_program

        result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
        edb = chain_edb(5)
        prov = provenance_eval(result.simplified.program, edb)
        tree = prov.explain(parse_literal("f_t@bf(3)"))
        assert tree.height() >= 2
        leaf_predicates = {leaf.predicate for leaf in tree.leaves()}
        assert "e" in leaf_predicates
