"""Tests for the factorability recognizers (Theorems 4.1-4.3)."""

import pytest

from repro.analysis.adornment import Adornment, adorn
from repro.analysis.classify import classify_program
from repro.core.theorems import (
    check_factorability,
    is_answer_propagating,
    is_selection_pushing,
    is_symmetric,
)
from repro.datalog.parser import parse_program, parse_query
from repro.workloads.examples import (
    example_43_edb,
    example_43_program,
    example_44_edb,
    example_44_program,
    example_45_edb,
    example_45_program,
    same_generation_program,
    three_rule_tc_program,
)
from repro.workloads.lists import pmem_program, pmem_query


def classify(program, goal):
    adorned = adorn(program, goal)
    from repro.analysis.adornment import split_adorned_name

    base, adn = split_adorned_name(adorned.goal.predicate)
    return classify_program(adorned.program, adorned.goal.predicate, adn)


class TestSelectionPushing:
    def test_three_rule_tc_syntactic(self):
        classification = classify(three_rule_tc_program(), parse_query("t(5, Y)"))
        assert is_selection_pushing(classification)

    def test_pmem_syntactic(self):
        classification = classify(pmem_program(), pmem_query(4))
        assert is_selection_pushing(classification)

    def test_example_43_needs_instance(self):
        classification = classify(example_43_program(), parse_query("p(5, Y)"))
        assert not is_selection_pushing(classification)
        assert is_selection_pushing(classification, edb=example_43_edb())

    def test_free_exit_violation_detected(self):
        # exit targets constrained by r1 only in rule 1: without the
        # EDB promise, containment fails.
        program = parse_program(
            """
            p(X, Y) :- f(X, V), p(V, Y), r1(Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        reasons = []
        assert not is_selection_pushing(classification, reasons=reasons)
        assert any("free_exit" in r for r in reasons)

    def test_syntactic_free_exit_containment(self):
        # right = exit's own relation: containment holds syntactically.
        program = parse_program(
            """
            p(X, Y) :- f(X, V), p(V, Y), e(W, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        assert is_selection_pushing(classification)

    def test_left_conjunction_mismatch(self):
        program = parse_program(
            """
            p(X, Y) :- l1(X), p(X, U), e(U, Y).
            p(X, Y) :- l2(X), p(X, U), e(U, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        reasons = []
        assert not is_selection_pushing(classification, reasons=reasons)
        assert any("left conjunctions differ" in r for r in reasons)

    def test_not_rlc_stable_rejected(self):
        classification = classify(same_generation_program(), parse_query("sg(1, Y)"))
        assert not is_selection_pushing(classification)


class TestSymmetric:
    def test_example_44_instance(self):
        classification = classify(example_44_program(), parse_query("p(5, Y)"))
        assert is_symmetric(classification, edb=example_44_edb())

    def test_rejects_right_linear_mix(self):
        classification = classify(example_45_program(), parse_query("p(5, Y)"))
        assert not is_symmetric(classification, edb=example_45_edb())

    def test_middle_equivalence_required(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, U), c1(U, V), p(V, Y), e(W, Y).
            p(X, Y) :- p(X, U), c2(U, V), p(V, Y), e(W, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        reasons = []
        assert not is_symmetric(classification, reasons=reasons)
        assert any("middle" in r for r in reasons)

    def test_syntactic_symmetric(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, U), c(U, V), p(V, Y), e(W, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        assert is_symmetric(classification)


class TestAnswerPropagating:
    def test_example_45_instance(self):
        classification = classify(example_45_program(), parse_query("p(5, Y)"))
        assert is_answer_propagating(classification, edb=example_45_edb())

    def test_includes_symmetric_programs(self):
        program = parse_program(
            """
            p(X, Y) :- p(X, U), c(U, V), p(V, Y), e(W, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        assert is_answer_propagating(classification)

    def test_left_linear_bound_exit_condition(self):
        # bound_exit(X) :- e(X, Y); bound of the left-linear rule is
        # l(X): containment fails syntactically.
        program = parse_program(
            """
            p(X, Y) :- l(X), p(X, U), d(U, Y).
            p(X, Y) :- e(X, Y).
            """
        )
        classification = classify(program, parse_query("p(5, Y)"))
        reasons = []
        assert not is_answer_propagating(classification, reasons=reasons)
        assert any("bound_exit" in r for r in reasons)


class TestReport:
    def test_tc_report(self):
        classification = classify(three_rule_tc_program(), parse_query("t(5, Y)"))
        report = check_factorability(classification)
        assert report.factorable
        assert report.certified_by == "Theorem 4.1 (selection-pushing)"

    def test_same_generation_report(self):
        classification = classify(same_generation_program(), parse_query("sg(1, Y)"))
        report = check_factorability(classification)
        assert not report.factorable
        assert report.certified_by is None
        assert report.reasons
