"""Tests for the Section 4.1 standard-form rewriting."""

from repro.analysis.standard_form import to_standard_form
from repro.datalog.parser import parse_program
from repro.datalog.terms import Variable


def standardize(text, predicates):
    return to_standard_form(parse_program(text), set(predicates))


class TestStandardForm:
    def test_already_standard(self):
        result = standardize("p(X, Y) :- p(X, W), e(W, Y).", {"p"})
        assert not result.changed
        assert result.infinite_predicates == set()

    def test_constant_replaced(self):
        result = standardize("p(X, Y) :- p(X, 5), e(Y).", {"p"})
        assert result.changed
        rule = result.program.rules[0]
        p_body = [l for l in rule.body if l.predicate == "p"][0]
        assert all(isinstance(a, Variable) for a in p_body.args)
        equals = [l for l in rule.body if l.predicate == "equal"]
        assert len(equals) == 1
        assert ("equal", 2) in result.infinite_predicates

    def test_repeated_variable_split(self):
        result = standardize("p(X, X) :- e(X).", {"p"})
        head = result.program.rules[0].head
        assert head.args[0] != head.args[1]
        assert any(l.predicate == "equal" for l in result.program.rules[0].body)

    def test_list_term_flattened(self):
        result = standardize("pmem(X, [X | T]) :- p(X).", {"pmem"})
        rule = result.program.rules[0]
        assert all(isinstance(a, Variable) for a in rule.head.args)
        lists = [l for l in rule.body if l.predicate == "list"]
        assert len(lists) == 1
        assert ("list", 3) in result.infinite_predicates
        # list(H, T, L): first two args are the cell contents.
        assert lists[0].args[1] == Variable("T")

    def test_nested_compound(self):
        result = standardize("p(f(g(X))) :- e(X).", {"p"})
        rule = result.program.rules[0]
        fns = {l.predicate for l in rule.body}
        assert "fn_f" in fns and "fn_g" in fns

    def test_repeated_var_in_head_and_body_consistent(self):
        """Head standardization must not rename shared body variables."""
        result = standardize("p(X, 3) :- p(X, W), d(W).", {"p"})
        rule = result.program.rules[0]
        body_p = [l for l in rule.body if l.predicate == "p"][0]
        assert rule.head.args[0] == body_p.args[0]

    def test_other_predicates_untouched(self):
        result = standardize("p(X, Y) :- q(X, 5), p(X, Y).", {"p"})
        q_lits = [
            l
            for r in result.program.rules
            for l in r.body
            if l.predicate == "q"
        ]
        assert q_lits[0].args[1].is_ground()
