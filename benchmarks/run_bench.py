"""Perf-trajectory entry point: engine wall-time on the headline workloads.

Runs the semi-naive engine on transitive closure (chain),
same-generation (tree), the skewed-fanout join, the wide-DAG
multi-component closure, and the coarse-grained component workload
with three plan backends — compiled plans under the greedy planner,
compiled plans under the cost-based planner, and the legacy dict-based
interpreter (``use_plans=False``) — then writes ``BENCH_engine.json``:
one row per (workload, configuration) with
``label``/``n``/``facts``/``inferences``/``seconds`` plus per-workload
wall-time speedups (``legacy/greedy``, the historical trajectory
metric, and ``greedy/cost`` for the planner comparison), so successive
PRs leave a comparable perf record.

``tc_chain``, ``same_generation``, and ``wide_dag`` additionally carry
execution-mode rows — ``columnar`` (batch-at-a-time over interned
column slabs, the serving default) vs ``tuple`` (the tuple-at-a-time
oracle) under otherwise identical greedy/jobs=1 knobs — with a
per-workload ``columnar_vs_tuple`` speedup; every labelled row pins
``exec`` explicitly so an inherited ``REPRO_EXEC`` cannot change what
a row measures.  ``--require-columnar-speedup`` gates on the kernel's
win in CI.

Workloads whose depth batches hold several mutually independent SCCs
(wide-DAG, coarse components) additionally run with the parallel
scheduler at ``jobs=1``/``jobs=2`` on the default thread executor
(``jobs1``/``jobs2`` rows) and — along with tc_chain, as the
single-SCC control — on the process execution backend at two and four
workers (``proc2``/``proc4`` rows, ``procN_vs_jobs1`` speedups),
checking that every execution backend stays counter-identical and
recording where process parallelism actually wins (the coarse
workload: few heavy components, nothing serial downstream).  Note the
proc speedups are hardware-bound: a single-core container time-slices
the workers and reports ~1x regardless of the backend's scaling.

``tc_chain``, ``same_generation``, and ``wide_dag`` also carry
**intra-component partitioning** rows (``part2``/``part4``): the
greedy/columnar configuration at ``jobs=1`` with each semi-naive
round's delta hash-split across 2/4 process partition workers inside
the component fixpoint (``partN_vs_jobs1`` speedups) — the axis that
helps exactly where ``jobs`` cannot, a program that is one recursive
SCC.  Every labelled row pins ``partitions`` explicitly, and like the
procN rows the partN speedups read <= 1x on a 1-CPU container by
construction; ``--require-part-speedup`` gates the multi-core win in
hosted CI.

The churn workload measures **incremental view maintenance**
(`repro/engine/incremental.py`) against the from-scratch alternative:
one `IncrementalSession` absorbs a deterministic insert/delete script
while the baseline re-runs ``seminaive_eval`` per update
(``churn/incremental`` vs ``churn/recompute`` rows and the
``churn/incremental_vs_recompute`` speedup); the two final databases
must be identical.  The incremental side runs in both execution modes
(``churn/incremental`` is columnar, ``churn/incremental_tuple`` the
oracle, ``churn/columnar_vs_tuple`` the maintenance-pass speedup).  ``churn/batch`` vs ``churn/per_call`` measures
atomic batching — one ``apply_batch`` maintenance pass per chunk of
the script against the same chunk as individual calls — and
``churn/batch_journal`` adds an fsync'd write-ahead journal to the
batched run, isolating the durability overhead of ``serve --journal``
(``churn/batch_vs_per_call`` and ``churn/journal_overhead`` speedups).

Input sizes scale with ``REPRO_BENCH_SCALE`` (the acceptance runs use
2; CI smoke uses 0.25).  Exits non-zero if any backends disagree on
``facts``/``inferences`` — the counters are the correctness signature,
so a bench run doubles as a coarse differential check.

Usage::

    PYTHONPATH=src REPRO_BENCH_SCALE=2 python benchmarks/run_bench.py \
        [--output BENCH_engine.json] [--best-of 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import Measurement, Series, bench_scale
from repro.datalog.parser import parse_program
from repro.engine.incremental import IncrementalSession
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import EvalStats
from repro.workloads.examples import same_generation_edb, same_generation_program
from repro.workloads.graphs import chain_edb
from repro.workloads.synthetic import (
    churn_edb,
    churn_program,
    churn_script,
    coarse_components_edb,
    coarse_components_program,
    skewed_fanout_edb,
    skewed_fanout_program,
    wide_dag_edb,
    wide_dag_program,
)

#: (row label, seminaive_eval kwargs); greedy is the historical
#: "compiled" configuration, so trajectory comparisons stay meaningful.
#: Every row pins ``jobs`` (and, where >1, ``backend``) plus ``exec``
#: and ``partitions`` explicitly so an inherited ``REPRO_JOBS``/
#: ``REPRO_BACKEND``/``REPRO_EXEC``/``REPRO_PARTITIONS`` cannot
#: silently change which executor, execution mode, or partitioning a
#: labelled row measures.
BACKENDS = (
    (
        "greedy",
        {"use_plans": True, "planner": "greedy", "jobs": 1, "exec": "columnar",
         "partitions": 1},
    ),
    (
        "cost",
        {"use_plans": True, "planner": "cost", "jobs": 1, "exec": "columnar",
         "partitions": 1},
    ),
    ("legacy", {"use_plans": False, "jobs": 1, "partitions": 1}),
)

#: Execution-mode rows: the greedy configuration batch-at-a-time over
#: interned columns vs the tuple-at-a-time oracle.  Counters must be
#: identical — the wall-time gap is the columnar kernel's win.
EXEC_BACKENDS = (
    (
        "columnar",
        {"use_plans": True, "planner": "greedy", "jobs": 1, "exec": "columnar",
         "partitions": 1},
    ),
    (
        "tuple",
        {"use_plans": True, "planner": "greedy", "jobs": 1, "exec": "tuple",
         "partitions": 1},
    ),
)

#: Parallel-scheduler rows: the greedy configuration pinned to one and
#: two workers on the thread executor.
JOBS_BACKENDS = (
    (
        "jobs1",
        {"use_plans": True, "planner": "greedy", "jobs": 1, "exec": "columnar",
         "partitions": 1},
    ),
    (
        "jobs2",
        {
            "use_plans": True,
            "planner": "greedy",
            "jobs": 2,
            "backend": "thread",
            "exec": "columnar",
            "partitions": 1,
        },
    ),
)

#: Process-executor rows: the same greedy configuration shipped to a
#: ``ProcessPoolExecutor`` at two and four workers.
PROC_BACKENDS = (
    (
        "proc2",
        {
            "use_plans": True,
            "planner": "greedy",
            "jobs": 2,
            "backend": "process",
            "exec": "columnar",
            "partitions": 1,
        },
    ),
    (
        "proc4",
        {
            "use_plans": True,
            "planner": "greedy",
            "jobs": 4,
            "backend": "process",
            "exec": "columnar",
            "partitions": 1,
        },
    ),
)

#: Intra-component partitioning rows: the greedy configuration with
#: each round's delta hash-split across two / four process partition
#: workers *inside* one SCC fixpoint (``jobs`` stays 1 — this is the
#: axis that helps precisely where ``jobs`` cannot: single-component
#: programs like tc_chain and same_generation).  Like the procN rows
#: these are hardware-bound: on a 1-CPU container the partition
#: workers time-slice one core and ``partN_vs_jobs1`` reads <= 1x by
#: construction.
PART_BACKENDS = (
    (
        "part2",
        {
            "use_plans": True,
            "planner": "greedy",
            "jobs": 1,
            "backend": "process",
            "exec": "columnar",
            "partitions": 2,
        },
    ),
    (
        "part4",
        {
            "use_plans": True,
            "planner": "greedy",
            "jobs": 1,
            "backend": "process",
            "exec": "columnar",
            "partitions": 4,
        },
    ),
)


def scaled(n: int, minimum: int = 2) -> int:
    return max(minimum, int(n * bench_scale()))


def _sg_depth() -> int:
    """Tree depth for same-generation: 5 at scale 1, +1 per doubling."""
    scale = bench_scale()
    depth = 5
    while scale >= 2:
        depth, scale = depth + 1, scale / 2
    while scale <= 0.5 and depth > 3:
        depth, scale = depth - 1, scale * 2
    return depth


WorkloadEntry = Tuple[
    str, int, Callable[[], Tuple[object, object]], Tuple[Tuple[str, dict], ...]
]


def workloads() -> List[WorkloadEntry]:
    """(name, n, edb/program thunk, row configurations) per workload."""
    tc_program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        """
    )
    tc_n = scaled(120)
    depth = _sg_depth()
    sg_n = 2 ** (depth + 1) - 1  # nodes in the balanced binary tree
    skew_sources = scaled(30, minimum=5)
    dag_width, dag_length = 4, scaled(60, minimum=8)
    # Coarse grain: as many components as wide_dag but *nonlinear*
    # closures (Θ(n³) inferences for Θ(n²) shipped facts) and no serial
    # collector downstream, so per-component compute dwarfs the
    # spec/delta serialization the process backend pays.  tc_chain is
    # the single-SCC control for the proc rows: its batches all hold
    # one component, so the scheduler takes the inline fast path and
    # never consults the executor (no pool is ever created) — the rows
    # must read ≈1x, demonstrating that selecting backend=process is
    # free when a program has nothing to parallelize.
    coarse_width, coarse_length = 4, scaled(75, minimum=12)
    return [
        (
            "tc_chain",
            tc_n,
            lambda: (tc_program, chain_edb(tc_n)),
            BACKENDS + EXEC_BACKENDS + PROC_BACKENDS + PART_BACKENDS,
        ),
        (
            "same_generation",
            sg_n,
            lambda: (same_generation_program(), same_generation_edb(depth, 2)),
            BACKENDS + EXEC_BACKENDS + PART_BACKENDS,
        ),
        (
            "skewed_fanout",
            skew_sources,
            lambda: (
                skewed_fanout_program(),
                skewed_fanout_edb(sources=skew_sources),
            ),
            BACKENDS,
        ),
        (
            "wide_dag",
            dag_width * dag_length,
            lambda: (
                wide_dag_program(dag_width),
                wide_dag_edb(dag_width, dag_length),
            ),
            BACKENDS + EXEC_BACKENDS + JOBS_BACKENDS + PROC_BACKENDS
            + PART_BACKENDS,
        ),
        (
            "coarse_components",
            coarse_width * coarse_length,
            lambda: (
                coarse_components_program(coarse_width),
                coarse_components_edb(coarse_width, coarse_length),
            ),
            JOBS_BACKENDS + PROC_BACKENDS,
        ),
    ]


def run_churn(
    best_of: int, series: Series
) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    """Incremental maintenance vs recompute on the churn workload.

    One :class:`IncrementalSession` absorbs a deterministic script of
    inserts/deletes against a large transitive closure; the recompute
    baseline re-runs ``seminaive_eval`` from scratch on the evolving
    EDB after every update.  Rows record the total *maintenance* time
    across the script (the identical initial materialization is
    excluded from both sides); the run fails if the two final
    databases disagree — maintenance correctness is the row's
    precondition, not an afterthought.
    """
    n = scaled(150, minimum=20)
    update_count = scaled(40, minimum=8)
    program = churn_program()
    script = churn_script(seed=11, updates=update_count, n=n)

    # The incremental side runs in both execution modes: the columnar
    # row carries the historical "churn/incremental" label (columnar is
    # the serving default) and the tuple-oracle row sits next to it so
    # the kernel's win shows on maintenance passes too.
    best_by_mode: Dict[str, float] = {}
    stats_by_mode: Dict[str, EvalStats] = {}
    db_by_mode: Dict[str, object] = {}
    for mode in ("columnar", "tuple"):
        for _ in range(best_of):
            session = IncrementalSession(
                program, churn_edb(n), exec=mode, partitions=1
            )
            maintenance = EvalStats()
            for op, pred, args in script:
                maintenance.absorb(
                    session.insert([(pred, args)])
                    if op == "+"
                    else session.delete([(pred, args)])
                )
            if (
                mode not in best_by_mode
                or maintenance.seconds < best_by_mode[mode]
            ):
                best_by_mode[mode] = maintenance.seconds
                stats_by_mode[mode] = maintenance
                db_by_mode[mode] = session.database
    best_incr = best_by_mode["columnar"]
    best_incr_stats = stats_by_mode["columnar"]
    incr_db = db_by_mode["columnar"]

    best_rec = None
    for _ in range(best_of):
        edb = churn_edb(n)
        seconds = 0.0
        for op, pred, args in script:
            if op == "+":
                edb.add_fact(pred, args)
            else:
                edb.remove_fact(pred, args)
            rec_db, stats = seminaive_eval(program, edb, partitions=1)
            seconds += stats.seconds
        if best_rec is None or seconds < best_rec:
            best_rec = seconds

    ok = incr_db == rec_db and db_by_mode["tuple"] == rec_db
    if not ok:
        print(
            "FAIL churn: incremental database diverged from the "
            "from-scratch recompute",
            file=sys.stderr,
        )
    # Only set-determined maintenance counters are comparable across
    # modes: DRed's delete passes emit duplicates (and close rounds) in
    # enumeration order, so inferences/incr_rounds legitimately vary
    # between runs — even within one mode under different hash seeds.
    if stats_by_mode["tuple"].rederived != best_incr_stats.rederived:
        print(
            "FAIL churn: rederivation counts diverged between "
            f"execution modes — columnar {best_incr_stats.rederived}, "
            f"tuple {stats_by_mode['tuple'].rederived}",
            file=sys.stderr,
        )
        ok = False
    facts = incr_db.total_facts()
    rows = [
        {
            "label": "churn/incremental",
            "n": n,
            "facts": facts,
            "inferences": best_incr_stats.inferences,
            "seconds": round(best_incr, 6),
        },
        {
            "label": "churn/incremental_tuple",
            "n": n,
            "facts": facts,
            "inferences": stats_by_mode["tuple"].inferences,
            "seconds": round(best_by_mode["tuple"], 6),
        },
        {
            "label": "churn/recompute",
            "n": n,
            "facts": facts,
            "inferences": None,
            "seconds": round(best_rec, 6),
        },
    ]
    speedup = best_rec / best_incr if best_incr else float("inf")
    exec_speedup = (
        best_by_mode["tuple"] / best_incr if best_incr else float("inf")
    )
    series.note(
        f"churn: incremental {speedup:.2f}x vs per-update recompute over "
        f"{len(script)} updates ({best_incr_stats.rederived} rederived, "
        f"{best_incr_stats.incr_rounds} delta rounds); columnar "
        f"maintenance {exec_speedup:.2f}x vs tuple"
    )
    return (
        rows,
        {
            "churn/incremental_vs_recompute": speedup,
            "churn/columnar_vs_tuple": exec_speedup,
        },
        ok,
    )


def run_batch_churn(
    best_of: int, series: Series
) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    """Batched maintenance vs per-call passes, and journal overhead.

    The same churn script is applied in chunks: ``churn/batch`` sends
    each chunk through one :meth:`IncrementalSession.apply_batch` (one
    combined delete+insert maintenance pass), ``churn/per_call`` plays
    the chunk's operations as individual ``insert``/``delete`` calls.
    Chunks are compressed to the last operation per fact first, so both
    sides provably land on the same final EDB — and the run fails if
    the final databases (or a from-scratch evaluation) disagree.

    ``churn/batch_journal`` repeats the batched run with every chunk
    write-ahead-logged to an fsync'd :class:`Journal` first — the
    durability overhead of ``serve --journal``, isolated from the
    maintenance work itself.
    """
    import tempfile

    from repro.engine.journal import Journal

    n = scaled(150, minimum=20)
    update_count = scaled(40, minimum=8)
    chunk_size = 8
    program = churn_program()
    script = churn_script(seed=17, updates=update_count, n=n)
    chunks = [
        script[i : i + chunk_size] for i in range(0, len(script), chunk_size)
    ]

    def compress(chunk):
        """Keep only the last operation per fact; split into batch halves."""
        last = {}
        for op, pred, args in chunk:
            last[(pred, args)] = op
        inserts = [key for key, op in last.items() if op == "+"]
        deletes = [key for key, op in last.items() if op == "-"]
        return inserts, deletes

    batches = [compress(chunk) for chunk in chunks]

    def run_batched(journal=None):
        session = IncrementalSession(program, churn_edb(n), partitions=1)
        maintenance = EvalStats()
        for inserts, deletes in batches:
            if journal is not None:
                journal.append_batch(inserts, deletes)
            maintenance.absorb(
                session.apply_batch(
                    inserts=inserts or None, deletes=deletes or None
                )
            )
        return session, maintenance

    best_batch = None
    for _ in range(best_of):
        session, maintenance = run_batched()
        if best_batch is None or maintenance.seconds < best_batch:
            best_batch = maintenance.seconds
            batch_stats, batch_db = maintenance, session.database

    best_call = None
    for _ in range(best_of):
        session = IncrementalSession(program, churn_edb(n), partitions=1)
        maintenance = EvalStats()
        for chunk in chunks:
            for op, pred, args in chunk:
                maintenance.absorb(
                    session.insert([(pred, args)])
                    if op == "+"
                    else session.delete([(pred, args)])
                )
        if best_call is None or maintenance.seconds < best_call:
            best_call = maintenance.seconds
            call_db = session.database

    best_journal = None
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(best_of):
            import time as _time

            path = os.path.join(tmp, f"bench-{i}.rjn")
            journal = Journal(path, fsync=True)
            begin = _time.perf_counter()
            session, _ = run_batched(journal)
            elapsed = _time.perf_counter() - begin
            journal.close()
            if best_journal is None or elapsed < best_journal:
                best_journal = elapsed

    edb = churn_edb(n)
    for op, pred, args in script:
        if op == "+":
            edb.add_fact(pred, args)
        else:
            edb.remove_fact(pred, args)
    scratch, _ = seminaive_eval(program, edb, partitions=1)
    ok = batch_db == call_db == scratch
    if not ok:
        print(
            "FAIL churn/batch: batched, per-call, and from-scratch "
            "databases disagree",
            file=sys.stderr,
        )
    facts = batch_db.total_facts()
    rows = [
        {
            "label": "churn/batch",
            "n": n,
            "facts": facts,
            "inferences": batch_stats.inferences,
            "seconds": round(best_batch, 6),
        },
        {
            "label": "churn/per_call",
            "n": n,
            "facts": facts,
            "inferences": None,
            "seconds": round(best_call, 6),
        },
        {
            "label": "churn/batch_journal",
            "n": n,
            "facts": facts,
            "inferences": None,
            "seconds": round(best_journal, 6),
        },
    ]
    speedups = {
        "churn/batch_vs_per_call": (
            best_call / best_batch if best_batch else float("inf")
        ),
        # >= 1.0; how much the fsync'd write-ahead log costs on top of
        # the batched maintenance itself.
        "churn/journal_overhead": (
            best_journal / best_batch if best_batch else float("inf")
        ),
    }
    series.note(
        f"churn/batch: {speedups['churn/batch_vs_per_call']:.2f}x vs "
        f"per-call over {len(batches)} chunks of <= {chunk_size}; "
        f"fsync'd journal costs "
        f"{speedups['churn/journal_overhead']:.2f}x of the batched run"
    )
    return rows, speedups, ok


def run_serve(
    best_of: int, series: Series
) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    """Sustained query throughput under churn (the serving layer).

    A :class:`~repro.engine.server.DatalogServer` absorbs a looping
    churn script (each full cycle applies the script and then its exact
    inverse, so the EDB returns to its base state) while reader threads
    hammer point queries against the pinned read views.
    ``serve/qps_churn_rN`` records queries/sec sustained with N ∈ {1, 4}
    readers racing the writer; ``serve/qps_r4_vs_r1`` is the
    concurrency ratio (≈ N× would mean reads scale freely; on one CPU
    the GIL time-slices and the ratio mostly shows reads not blocking
    behind the writer).  The run fails if the final database diverges
    from a from-scratch evaluation of the base EDB — every cycle is
    net-zero, so divergence means a batch tore.
    """
    import threading
    import time as _time

    from repro.engine.server import DatalogServer

    n = scaled(80, minimum=20)
    update_count = scaled(24, minimum=8)
    duration = 0.4  # seconds of sustained churn per measured run
    chunk_size = 4
    program = churn_program()
    script = churn_script(seed=23, updates=update_count, n=n)
    chunks = [
        script[i : i + chunk_size] for i in range(0, len(script), chunk_size)
    ]

    # Compress each chunk to its *net* effect against a shadow of the
    # evolving EDB, then append the inverses in reverse order: one full
    # cycle provably restores the base state, so the writer can loop
    # for the whole measurement window without consistency drift.
    base = churn_edb(n)
    shadow = {
        (sig[0], tuple(t.value for t in fact))
        for sig, rel in base.relations.items()
        for fact in rel.tuples
    }
    forward = []
    for chunk in chunks:
        last = {}
        for op, pred, args in chunk:
            last[(pred, args)] = op
        inserts = [k for k, op in last.items() if op == "+" and k not in shadow]
        deletes = [k for k, op in last.items() if op == "-" and k in shadow]
        shadow |= set(inserts)
        shadow -= set(deletes)
        forward.append((inserts, deletes))
    cycle = forward + [(dels, ins) for ins, dels in reversed(forward)]

    rows: List[Dict[str, object]] = []
    qps_by_readers: Dict[int, float] = {}
    ok = True
    for readers in (1, 4):
        best_qps = None
        for _ in range(best_of):
            session = IncrementalSession(program, churn_edb(n), partitions=1)
            server = DatalogServer(session)
            done = threading.Event()
            counts = [0] * readers
            errors: List[BaseException] = []

            def reader(slot):
                try:
                    i = slot
                    while not done.is_set():
                        server.query(f"t({i % n}, Y)")
                        counts[slot] += 1
                        i += readers
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(slot,), daemon=True)
                for slot in range(readers)
            ]
            for thread in threads:
                thread.start()
            begin = _time.perf_counter()
            while True:
                for inserts, deletes in cycle:
                    if inserts or deletes:
                        server.apply_batch(
                            inserts=inserts or None, deletes=deletes or None
                        )
                if _time.perf_counter() - begin >= duration:
                    break
            elapsed = _time.perf_counter() - begin
            done.set()
            for thread in threads:
                thread.join(timeout=30)
            if errors or any(t.is_alive() for t in threads):
                print(
                    f"FAIL serve: reader thread failed under churn "
                    f"({errors!r})",
                    file=sys.stderr,
                )
                ok = False
                break
            scratch, _ = seminaive_eval(program, churn_edb(n), partitions=1)
            if server.session.database != scratch:
                print(
                    "FAIL serve: net-zero churn cycles diverged from the "
                    "base-state oracle",
                    file=sys.stderr,
                )
                ok = False
                break
            qps = sum(counts) / elapsed if elapsed else 0.0
            if best_qps is None or qps > best_qps:
                best_qps = qps
                best_run = (sum(counts), elapsed, server.stats)
        if best_qps is None:
            break
        queries, elapsed, stats = best_run
        qps_by_readers[readers] = best_qps
        rows.append(
            {
                "label": f"serve/qps_churn_r{readers}",
                "n": n,
                "facts": queries,
                "inferences": None,
                "seconds": round(elapsed, 6),
                "qps": round(best_qps, 1),
            }
        )
        series.add(
            Measurement(
                label=f"serve/qps_churn_r{readers}",
                n=n,
                facts=queries,
                inferences=0,
                iterations=stats.batches_committed,
                seconds=elapsed,
            )
        )
    speedups: Dict[str, float] = {}
    if 1 in qps_by_readers and 4 in qps_by_readers:
        speedups["serve/qps_r4_vs_r1"] = (
            qps_by_readers[4] / qps_by_readers[1]
            if qps_by_readers[1]
            else float("inf")
        )
        series.note(
            f"serve: {qps_by_readers[1]:.0f} q/s with 1 reader, "
            f"{qps_by_readers[4]:.0f} q/s with 4 "
            f"({speedups['serve/qps_r4_vs_r1']:.2f}x) under sustained "
            f"churn"
        )
    return rows, speedups, ok


def run_query(
    best_of: int, series: Series
) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    """Goal-directed serving vs materialize-then-filter (PR 7).

    ``query/tc_point_*``: one selective bound-first point query
    ``t(src, Y)`` near the tail of a long chain.  The serving path
    (:class:`~repro.engine.query.QueryCompiler` — adorn, Magic Sets,
    factoring where certified, compiled plans) touches only the cone
    the binding reaches; the baseline pays the full Θ(n²) closure and
    filters.  Both sides answer from cold; the goal row then re-asks
    with a shifted constant (``tc_point_warm``) to record what the
    compiled-form cache buys.

    ``query/pmem_*``: the Example 1.2 membership workload.  ``pmem``'s
    full IDB is infinite (every list containing a satisfying element),
    so a materialize-then-filter baseline cannot terminate; the honest
    baseline is the goal-directed *magic* rewrite without factoring —
    the paper's own O(n²)-vs-O(n) comparison — evaluated from scratch.

    Answers must agree between every pair of configurations; the run
    fails otherwise.
    """
    from repro.core.pipeline import optimize
    from repro.engine.query import QueryCompiler
    from repro.workloads.graphs import chain_edb as _chain_edb
    from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

    tc_program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        """
    )
    tc_n = scaled(120)
    source = tc_n - 10  # selective: the goal cone is ~10 nodes of n
    edb = _chain_edb(tc_n)
    goal = f"t({source}, Y)"

    best_goal = None
    best_warm = None
    for _ in range(best_of):
        compiler = QueryCompiler(tc_program, jobs=1, partitions=1)
        answer = compiler.ask(goal, edb)
        if best_goal is None or answer.stats.seconds < best_goal:
            best_goal, goal_answer = answer.stats.seconds, answer
        warm = compiler.ask(f"t({source - 1}, Y)", edb)
        assert warm.from_cache
        if best_warm is None or warm.stats.seconds < best_warm:
            best_warm = warm.stats.seconds

    best_mat = None
    for _ in range(best_of):
        full, stats = seminaive_eval(tc_program, edb, jobs=1, partitions=1)
        if best_mat is None or stats.seconds < best_mat:
            best_mat, mat_db = stats.seconds, full
    from repro.datalog.parser import parse_query as _parse_query

    ok = goal_answer.answers == mat_db.query(_parse_query(goal))
    if not ok:
        print(
            "FAIL query/tc_point: goal-directed answers diverged from "
            "the materialized closure",
            file=sys.stderr,
        )

    pmem_n = scaled(60, minimum=10)
    p_program = pmem_program()
    p_edb = pmem_edb(pmem_n)
    p_goal = pmem_query(pmem_n)

    best_pmem = None
    for _ in range(best_of):
        compiler = QueryCompiler(p_program, jobs=1, partitions=1)
        answer = compiler.ask(p_goal, p_edb)
        if best_pmem is None or answer.stats.seconds < best_pmem:
            best_pmem, pmem_answer = answer.stats.seconds, answer

    best_magic = None
    for _ in range(best_of):
        plan = optimize(p_program, p_goal)
        magic_answers, stats = plan.evaluate_stage(
            "magic", p_edb, jobs=1, partitions=1
        )
        if best_magic is None or stats.seconds < best_magic:
            best_magic = stats.seconds
    if pmem_answer.answers != magic_answers:
        print(
            "FAIL query/pmem: factored serving answers diverged from "
            "the magic rewrite",
            file=sys.stderr,
        )
        ok = False

    rows = [
        {
            "label": "query/tc_point_goal",
            "n": tc_n,
            "facts": goal_answer.stats.facts,
            "inferences": goal_answer.stats.inferences,
            "seconds": round(best_goal, 6),
        },
        {
            "label": "query/tc_point_warm",
            "n": tc_n,
            "facts": None,
            "inferences": None,
            "seconds": round(best_warm, 6),
        },
        {
            "label": "query/tc_point_materialize",
            "n": tc_n,
            "facts": mat_db.total_facts(),
            "inferences": None,
            "seconds": round(best_mat, 6),
        },
        {
            "label": "query/pmem_goal",
            "n": pmem_n,
            "facts": pmem_answer.stats.facts,
            "inferences": pmem_answer.stats.inferences,
            "seconds": round(best_pmem, 6),
        },
        {
            "label": "query/pmem_magic",
            "n": pmem_n,
            "facts": None,
            "inferences": None,
            "seconds": round(best_magic, 6),
        },
    ]
    speedups = {
        "query/tc_point_goal_vs_materialize": (
            best_mat / best_goal if best_goal else float("inf")
        ),
        "query/tc_point_warm_vs_materialize": (
            best_mat / best_warm if best_warm else float("inf")
        ),
        "query/pmem_factored_vs_magic": (
            best_magic / best_pmem if best_pmem else float("inf")
        ),
    }
    series.note(
        f"query: {goal_answer.strategy} point query "
        f"{speedups['query/tc_point_goal_vs_materialize']:.2f}x vs "
        f"materialize-then-filter (warm "
        f"{speedups['query/tc_point_warm_vs_materialize']:.2f}x); pmem "
        f"{pmem_answer.strategy} "
        f"{speedups['query/pmem_factored_vs_magic']:.2f}x vs magic rewrite"
    )
    return rows, speedups, ok


def run(
    best_of: int, only: List[str] | None = None
) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    rows: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}
    ok = True
    series = Series(
        "engine: planners, legacy interpreter, and execution backends"
    )
    selected = workloads()
    churn_selected = only is None or "churn" in only
    query_selected = only is None or "query" in only
    serve_selected = only is None or "serve" in only
    if only:
        unknown = (
            set(only)
            - {name for name, *_ in selected}
            - {"churn", "query", "serve"}
        )
        if unknown:
            raise SystemExit(f"unknown workloads: {sorted(unknown)}")
        selected = [entry for entry in selected if entry[0] in only]
    for name, n, make, configs in selected:
        program, edb = make()
        results = {}
        for label, kwargs in configs:
            best = None
            for _ in range(best_of):
                _, stats = seminaive_eval(program, edb, **kwargs)
                if best is None or stats.seconds < best.seconds:
                    best = stats
            results[label] = best
            rows.append(
                {
                    "label": f"{name}/{label}",
                    "n": n,
                    "facts": best.facts,
                    "inferences": best.inferences,
                    "seconds": round(best.seconds, 6),
                }
            )
            series.add(
                Measurement(
                    label=f"{name}/{label}",
                    n=n,
                    facts=best.facts,
                    inferences=best.inferences,
                    iterations=best.iterations,
                    seconds=best.seconds,
                )
            )
        baseline_label = "greedy" if "greedy" in results else configs[0][0]
        baseline = results[baseline_label]
        for label, stats in results.items():
            if (stats.facts, stats.inferences) != (
                baseline.facts,
                baseline.inferences,
            ):
                print(
                    f"FAIL {name}: counter mismatch — {baseline_label} "
                    f"facts={baseline.facts} inferences={baseline.inferences}, "
                    f"{label} facts={stats.facts} inferences={stats.inferences}",
                    file=sys.stderr,
                )
                ok = False
        notes = [name + ":"]
        if "legacy" in results:
            greedy, legacy, cost = (
                results["greedy"], results["legacy"], results["cost"],
            )
            speedups[name] = (
                legacy.seconds / greedy.seconds if greedy.seconds else float("inf")
            )
            speedups[f"{name}/cost_vs_greedy"] = (
                greedy.seconds / cost.seconds if cost.seconds else float("inf")
            )
            notes.append(
                f"{speedups[name]:.2f}x vs legacy, cost planner "
                f"{speedups[f'{name}/cost_vs_greedy']:.2f}x vs greedy "
                f"({cost.replans} replans)"
            )
        if "columnar" in results and "tuple" in results:
            col, tup = results["columnar"], results["tuple"]
            speedups[f"{name}/columnar_vs_tuple"] = (
                tup.seconds / col.seconds if col.seconds else float("inf")
            )
            notes.append(
                f"columnar {speedups[f'{name}/columnar_vs_tuple']:.2f}x "
                f"vs tuple"
            )
        # Parallel rows compare against jobs1 (the same configuration
        # pinned to one worker); tc_chain has no jobs1 row, so its proc
        # control compares against greedy (identical knobs, jobs=1).
        par_base = results.get("jobs1", results.get("greedy"))
        if "jobs2" in results:
            jobs2 = results["jobs2"]
            speedups[f"{name}/jobs2_vs_jobs1"] = (
                par_base.seconds / jobs2.seconds if jobs2.seconds else float("inf")
            )
            notes.append(
                f"jobs=2 {speedups[f'{name}/jobs2_vs_jobs1']:.2f}x vs jobs=1 "
                f"({jobs2.scc_parallel_batches} parallel batches)"
            )
        for label in ("proc2", "proc4", "part2", "part4"):
            if label in results and par_base is not None:
                stats = results[label]
                key = f"{name}/{label}_vs_jobs1"
                speedups[key] = (
                    par_base.seconds / stats.seconds
                    if stats.seconds
                    else float("inf")
                )
                notes.append(f"{label} {speedups[key]:.2f}x vs jobs=1")
        if "part2" in results:
            notes.append(
                f"({results['part2'].partition_rounds} partitioned rounds, "
                f"skew {results['part2'].partition_skew:.2f})"
            )
        series.note(" ".join(notes))
    if churn_selected:
        churn_rows, churn_speedups, churn_ok = run_churn(best_of, series)
        rows.extend(churn_rows)
        speedups.update(churn_speedups)
        ok = ok and churn_ok
        batch_rows, batch_speedups, batch_ok = run_batch_churn(
            best_of, series
        )
        rows.extend(batch_rows)
        speedups.update(batch_speedups)
        ok = ok and batch_ok
    if query_selected:
        query_rows, query_speedups, query_ok = run_query(best_of, series)
        rows.extend(query_rows)
        speedups.update(query_speedups)
        ok = ok and query_ok
    if serve_selected:
        serve_rows, serve_speedups, serve_ok = run_serve(best_of, series)
        rows.extend(serve_rows)
        speedups.update(serve_speedups)
        ok = ok and serve_ok
    series.show()
    return rows, speedups, ok


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        default=3,
        help="timing repetitions per configuration; best is recorded",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only the named workloads (default: all); e.g. "
        "--workloads coarse_components for the process-backend demo",
    )
    parser.add_argument(
        "--require-columnar-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero unless some */columnar_vs_tuple speedup "
        "reaches RATIO; unlike the proc gate this win is "
        "single-threaded, so it is never skipped for lack of CPUs — "
        "the CI gate for the batch execution kernel",
    )
    parser.add_argument(
        "--require-proc-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero unless some procN_vs_jobs1 speedup reaches "
        "RATIO (skipped when fewer than 2 CPUs are visible — parallel "
        "speedup is not physically possible there); the CI gate for "
        "the process backend's multi-core wall-time win",
    )
    parser.add_argument(
        "--require-part-speedup",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero unless some partN_vs_jobs1 speedup reaches "
        "RATIO (skipped when fewer than 2 CPUs are visible, like the "
        "proc gate); the CI gate for intra-component partitioning's "
        "multi-core win on single-SCC workloads like tc_chain",
    )
    args = parser.parse_args(argv)

    rows, speedups, ok = run(max(1, args.best_of), only=args.workloads)
    record = {
        "scale": bench_scale(),
        # The proc rows are hardware-bound: on one visible CPU the
        # workers time-slice and procN_vs_jobs1 reads ~1x regardless
        # of how well the backend scales, so record the core budget
        # the numbers were taken under.
        "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "rows": rows,
        "speedup": {name: round(value, 2) for name, value in speedups.items()},
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if args.require_columnar_speedup is not None:
        best = max(
            (
                value
                for key, value in speedups.items()
                if key.endswith("columnar_vs_tuple")
            ),
            default=0.0,
        )
        if best < args.require_columnar_speedup:
            print(
                f"columnar kernel speedup regressed: best {best:.2f}x "
                f"< {args.require_columnar_speedup:.2f}x over the "
                f"tuple oracle",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"columnar kernel speedup {best:.2f}x over the tuple oracle")
    if args.require_proc_speedup is not None:
        cpus = record["cpus"]
        best = max(
            (
                value
                for key, value in speedups.items()
                if "/proc" in key and key.endswith("_vs_jobs1")
            ),
            default=0.0,
        )
        if cpus < 2:
            print(
                f"only {cpus} CPU visible; parallel speedup is not "
                f"physically possible here (best {best:.2f}x) — gate skipped"
            )
        elif best < args.require_proc_speedup:
            print(
                f"process backend speedup regressed: best {best:.2f}x "
                f"< {args.require_proc_speedup:.2f}x over jobs=1 on "
                f"{cpus} CPUs",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"process backend speedup {best:.2f}x on {cpus} CPUs")
    if args.require_part_speedup is not None:
        cpus = record["cpus"]
        best = max(
            (
                value
                for key, value in speedups.items()
                if "/part" in key and key.endswith("_vs_jobs1")
            ),
            default=0.0,
        )
        if cpus < 2:
            print(
                f"only {cpus} CPU visible; partition speedup is not "
                f"physically possible here (best {best:.2f}x) — gate skipped"
            )
        elif best < args.require_part_speedup:
            print(
                f"intra-component partition speedup regressed: best "
                f"{best:.2f}x < {args.require_part_speedup:.2f}x over "
                f"jobs=1 on {cpus} CPUs",
                file=sys.stderr,
            )
            ok = False
        else:
            print(
                f"intra-component partition speedup {best:.2f}x on "
                f"{cpus} CPUs"
            )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
