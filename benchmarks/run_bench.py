"""Perf-trajectory entry point: engine wall-time on the headline workloads.

Runs the semi-naive engine on transitive closure (chain),
same-generation (tree), the skewed-fanout join, and the wide-DAG
multi-component closure with three backends — compiled plans under the
greedy planner, compiled plans under the cost-based planner, and the
legacy dict-based interpreter (``use_plans=False``) — then writes
``BENCH_engine.json``: one row per (workload, backend) with
``label``/``n``/``facts``/``inferences``/``seconds`` plus per-workload
wall-time speedups (``legacy/greedy``, the historical trajectory
metric, and ``greedy/cost`` for the planner comparison), so successive
PRs leave a comparable perf record.

The wide-DAG workload — whose depth batches hold several mutually
independent SCCs — additionally runs with the parallel scheduler at
``jobs=1`` and ``jobs=2`` (the ``jobs1``/``jobs2`` rows and the
``wide_dag/jobs2_vs_jobs1`` speedup), checking that batch-parallel
evaluation stays counter-identical and does not regress wall time.

Input sizes scale with ``REPRO_BENCH_SCALE`` (the acceptance runs use
2; CI smoke uses 0.25).  Exits non-zero if any backends disagree on
``facts``/``inferences`` — the counters are the correctness signature,
so a bench run doubles as a coarse differential check.

Usage::

    PYTHONPATH=src REPRO_BENCH_SCALE=2 python benchmarks/run_bench.py \
        [--output BENCH_engine.json] [--best-of 3]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import Measurement, Series, bench_scale
from repro.datalog.parser import parse_program
from repro.engine.seminaive import seminaive_eval
from repro.workloads.examples import same_generation_edb, same_generation_program
from repro.workloads.graphs import chain_edb
from repro.workloads.synthetic import (
    skewed_fanout_edb,
    skewed_fanout_program,
    wide_dag_edb,
    wide_dag_program,
)

#: (backend label, seminaive_eval kwargs); greedy is the historical
#: "compiled" configuration, so trajectory comparisons stay meaningful.
BACKENDS = (
    ("greedy", {"use_plans": True, "planner": "greedy"}),
    ("cost", {"use_plans": True, "planner": "cost"}),
    ("legacy", {"use_plans": False}),
)

#: Extra backends for the wide-DAG workload only: the same greedy
#: configuration pinned to one and two scheduler workers.
JOBS_BACKENDS = (
    ("jobs1", {"use_plans": True, "planner": "greedy", "jobs": 1}),
    ("jobs2", {"use_plans": True, "planner": "greedy", "jobs": 2}),
)


def scaled(n: int, minimum: int = 2) -> int:
    return max(minimum, int(n * bench_scale()))


def _sg_depth() -> int:
    """Tree depth for same-generation: 5 at scale 1, +1 per doubling."""
    scale = bench_scale()
    depth = 5
    while scale >= 2:
        depth, scale = depth + 1, scale / 2
    while scale <= 0.5 and depth > 3:
        depth, scale = depth - 1, scale * 2
    return depth


def workloads() -> List[Tuple[str, int, Callable[[], Tuple[object, object]]]]:
    """(name, n, edb/program thunk) for each headline workload."""
    tc_program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        """
    )
    tc_n = scaled(120)
    depth = _sg_depth()
    sg_n = 2 ** (depth + 1) - 1  # nodes in the balanced binary tree
    skew_sources = scaled(30, minimum=5)
    dag_width, dag_length = 4, scaled(60, minimum=8)
    return [
        ("tc_chain", tc_n, lambda: (tc_program, chain_edb(tc_n))),
        (
            "same_generation",
            sg_n,
            lambda: (same_generation_program(), same_generation_edb(depth, 2)),
        ),
        (
            "skewed_fanout",
            skew_sources,
            lambda: (
                skewed_fanout_program(),
                skewed_fanout_edb(sources=skew_sources),
            ),
        ),
        (
            "wide_dag",
            dag_width * dag_length,
            lambda: (
                wide_dag_program(dag_width),
                wide_dag_edb(dag_width, dag_length),
            ),
        ),
    ]


def run(best_of: int) -> Tuple[List[Dict[str, object]], Dict[str, float], bool]:
    rows: List[Dict[str, object]] = []
    speedups: Dict[str, float] = {}
    ok = True
    series = Series("engine: greedy vs cost planners vs legacy interpreter")
    for name, n, make in workloads():
        program, edb = make()
        results = {}
        backends = list(BACKENDS)
        if name == "wide_dag":
            backends += list(JOBS_BACKENDS)
        for backend, kwargs in backends:
            best = None
            for _ in range(best_of):
                _, stats = seminaive_eval(program, edb, **kwargs)
                if best is None or stats.seconds < best.seconds:
                    best = stats
            results[backend] = best
            rows.append(
                {
                    "label": f"{name}/{backend}",
                    "n": n,
                    "facts": best.facts,
                    "inferences": best.inferences,
                    "seconds": round(best.seconds, 6),
                }
            )
            series.add(
                Measurement(
                    label=f"{name}/{backend}",
                    n=n,
                    facts=best.facts,
                    inferences=best.inferences,
                    iterations=best.iterations,
                    seconds=best.seconds,
                )
            )
        greedy = results["greedy"]
        for backend, stats in results.items():
            if (stats.facts, stats.inferences) != (greedy.facts, greedy.inferences):
                print(
                    f"FAIL {name}: counter mismatch — greedy "
                    f"facts={greedy.facts} inferences={greedy.inferences}, "
                    f"{backend} facts={stats.facts} inferences={stats.inferences}",
                    file=sys.stderr,
                )
                ok = False
        legacy, cost = results["legacy"], results["cost"]
        speedups[name] = (
            legacy.seconds / greedy.seconds if greedy.seconds else float("inf")
        )
        speedups[f"{name}/cost_vs_greedy"] = (
            greedy.seconds / cost.seconds if cost.seconds else float("inf")
        )
        note = (
            f"{name}: {speedups[name]:.2f}x vs legacy, "
            f"cost planner {speedups[f'{name}/cost_vs_greedy']:.2f}x vs greedy "
            f"({cost.replans} replans)"
        )
        if "jobs2" in results:
            jobs1, jobs2 = results["jobs1"], results["jobs2"]
            speedups[f"{name}/jobs2_vs_jobs1"] = (
                jobs1.seconds / jobs2.seconds if jobs2.seconds else float("inf")
            )
            note += (
                f", jobs=2 {speedups[f'{name}/jobs2_vs_jobs1']:.2f}x vs jobs=1 "
                f"({jobs2.scc_parallel_batches} parallel batches)"
            )
        series.note(note)
    series.show()
    return rows, speedups, ok


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        default=3,
        help="timing repetitions per configuration; best is recorded",
    )
    args = parser.parse_args(argv)

    rows, speedups, ok = run(max(1, args.best_of))
    record = {
        "scale": bench_scale(),
        "rows": rows,
        "speedup": {name: round(value, 2) for name, value in speedups.items()},
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
