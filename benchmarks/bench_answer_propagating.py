"""E5 — Example 4.5: answer-propagating programs (Theorem 4.3).

The class combines selection-pushing and symmetric conditions: combined
rules with shared middles *plus* a right-linear rule whose
``bound_first`` is contained in the combined rules' ``bound``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.core.theorems import is_answer_propagating
from repro.datalog.parser import parse_query
from repro.workloads.examples import example_45_edb, example_45_program

from benchmarks.conftest import scaled


def test_e5_answer_propagating_certified_and_correct():
    series = Series("E5: Example 4.5 (answer-propagating) — magic vs factored")
    program = example_45_program()
    goal = parse_query("p(5, Y)")
    for n in (scaled(15), scaled(30), scaled(60)):
        edb = example_45_edb(n)
        result = optimize(program, goal, edb=edb)
        assert result.report is not None
        assert is_answer_propagating(result.classification, edb=edb)
        expected = None
        for stage in ("magic", "simplified"):
            answers, stats = result.evaluate_stage(stage, edb)
            if expected is None:
                expected = answers
            assert answers == expected
            series.add(
                Measurement(
                    label=stage,
                    n=n,
                    facts=stats.facts,
                    inferences=stats.inferences,
                    seconds=stats.seconds,
                    answers=len(answers),
                )
            )
    series.show()


def test_e5_strictly_generalizes_symmetric():
    """Theorem 4.3 strictly generalizes Theorem 4.2: Example 4.5 has a
    right-linear rule, so it is answer-propagating but not symmetric."""
    from repro.core.theorems import is_symmetric

    program = example_45_program()
    goal = parse_query("p(5, Y)")
    edb = example_45_edb(scaled(15))
    result = optimize(program, goal, edb=edb)
    assert is_answer_propagating(result.classification, edb=edb)
    assert not is_symmetric(result.classification, edb=edb)


@pytest.mark.benchmark(group="E5-answer-propagating")
def test_e5_timing(benchmark):
    program = example_45_program()
    goal = parse_query("p(5, Y)")
    edb = example_45_edb(scaled(30))
    result = optimize(program, goal, edb=edb)
    benchmark(lambda: result.evaluate_stage("simplified", edb))
