"""E11 — Theorem 3.1: the undecidability reduction, demonstrated.

Factorability of the gadget's ``t`` into ``t1(X) / t2(Y, Z)`` encodes
``q1 ≡ q2``; since Datalog equivalence is undecidable, so is
factorability.  The bench exercises the gadget over a family of
(q1, q2) pairs and EDBs and tabulates when each candidate factoring
preserves answers — including the proof's own counterexample EDB.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.undecidability import (
    answers,
    containment_gadget,
    factoring_is_valid_on,
    proof_counterexample_edb,
)
from repro.datalog.parser import parse_program
from repro.engine.database import Database

from benchmarks.conftest import scaled


def test_e11_gadget_table():
    series = Series("E11: Theorem 3.1 gadget — factoring validity vs q1 ≡ q2")
    gadget = containment_gadget()
    cases = {
        "q1==q2": Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "q1": [(3, 4)], "q2": [(3, 4)]}
        ),
        "q1!=q2": Database.from_dict(
            {"a1": [(1,)], "a2": [(2,)], "q1": [(3, 4)], "q2": [(5, 6)]}
        ),
        "proof-EDB": proof_counterexample_edb(),
    }
    expected_valid = {"q1==q2": True, "q1!=q2": False, "proof-EDB": True}
    for name, edb in cases.items():
        valid = factoring_is_valid_on(gadget, "1|23", edb)
        series.add(
            Measurement(
                label=f"1|23 on {name}",
                n=edb.total_facts(),
                answers=len(answers(gadget.original, gadget.goal, edb)),
                extra={"valid": valid},
            )
        )
        assert valid == expected_valid[name], name
    # the 12|3 split fails on the proof EDB, as in the text.
    assert not factoring_is_valid_on(gadget, "12|3", proof_counterexample_edb())
    series.note("validity of the 1|23 factoring tracks q1 ≡ q2 exactly")
    series.show()


def test_e11_recursive_queries():
    """q1/q2 as recursive Datalog: equivalence still tracks validity."""
    series = Series("E11b: gadget with recursive q1/q2")
    tc_left = parse_program("q1(X, Y) :- e(X, Y).\nq1(X, Y) :- q1(X, W), e(W, Y).")
    tc_right = parse_program("q2(X, Y) :- e(X, Y).\nq2(X, Y) :- e(X, W), q2(W, Y).")
    one_step = parse_program("q2(X, Y) :- e(X, Y).")
    n = scaled(10)
    edb = Database.from_dict(
        {
            "a1": [(1,)],
            "a2": [(2,)],
            "e": [(i, i + 1) for i in range(n)],
        }
    )
    for label, q2, expected in (
        ("equivalent TCs", tc_right, True),
        ("TC vs 1-step", one_step, False),
    ):
        gadget = containment_gadget(tc_left, q2)
        valid = factoring_is_valid_on(gadget, "1|23", edb)
        series.add(
            Measurement(label=label, n=n, extra={"valid": valid})
        )
        assert valid == expected
    series.show()


@pytest.mark.benchmark(group="E11-gadget")
def test_e11_timing(benchmark):
    gadget = containment_gadget()
    edb = proof_counterexample_edb()
    benchmark(lambda: factoring_is_valid_on(gadget, "1|23", edb))
