"""E17 — Section 6.3: the [9] rewritings vs Magic + factoring.

"For the programs considered in that paper, the Magic Sets plus
factoring transformation produces the same final program as the
rewriting algorithms from that paper."  Checked structurally
(isomorphism) and dynamically (identical cost counters) for the
right-linear, left-linear, and mixed transitive closures.
"""

from __future__ import annotations

import pytest

from repro.analysis.isomorphism import programs_isomorphic
from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.core.section63 import rewrite_linear
from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.workloads.graphs import chain_edb

from benchmarks.conftest import scaled

PROGRAMS = {
    "right-linear": parse_program(
        "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y)."
    ),
    "left-linear": parse_program(
        "t(X, Y) :- t(X, W), e(W, Y).\nt(X, Y) :- e(X, Y)."
    ),
    "mixed": parse_program(
        """
        t(X, Y) :- t(X, W), e(W, Y).
        t(X, Y) :- e(X, W), t(W, Y).
        t(X, Y) :- e(X, Y).
        """
    ),
}


def test_e17_structural_and_dynamic_identity():
    series = Series("E17: [9] rewriting vs Magic+factoring (identical programs)")
    goal = parse_query("t(0, Y)")
    n = scaled(50)
    edb = chain_edb(n)
    for name, program in PROGRAMS.items():
        rewritten, query_head = rewrite_linear(program, goal)
        pipeline = optimize(program, goal)
        iso = programs_isomorphic(rewritten, pipeline.simplified.program)
        assert iso, name
        db1, stats1 = seminaive_eval(rewritten, edb)
        answers2, stats2 = pipeline.evaluate_stage("simplified", edb)
        assert db1.query(query_head) == answers2
        assert (stats1.facts, stats1.inferences) == (
            stats2.facts,
            stats2.inferences,
        ), name
        series.add(
            Measurement(
                label=name, n=n, facts=stats1.facts,
                inferences=stats1.inferences, seconds=stats1.seconds,
                answers=len(answers2),
                extra={"isomorphic": iso},
            )
        )
    series.note("identical programs, identical counters — Section 6.3 verified")
    series.show()


@pytest.mark.benchmark(group="E17-section63")
def test_e17_timing_rewritten(benchmark):
    goal = parse_query("t(0, Y)")
    rewritten, _ = rewrite_linear(PROGRAMS["mixed"], goal)
    edb = chain_edb(scaled(50))
    benchmark(lambda: seminaive_eval(rewritten, edb))
