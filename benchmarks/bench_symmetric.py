"""E4 — Example 4.4: symmetric programs (Theorem 4.2).

The program's two combined rules share their middle conjunction; with
an EDB satisfying ``free_exit ⊆ r1, r2``, the factored program agrees
with Magic and runs with lower-arity recursive predicates.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.core.theorems import is_symmetric
from repro.datalog.parser import parse_query
from repro.workloads.examples import example_44_edb, example_44_program

from benchmarks.conftest import scaled


def test_e4_symmetric_certified_and_correct():
    series = Series("E4: Example 4.4 (symmetric) — magic vs factored")
    program = example_44_program()
    goal = parse_query("p(5, Y)")
    for n in (scaled(15), scaled(30), scaled(60)):
        edb = example_44_edb(n)
        result = optimize(program, goal, edb=edb)
        assert result.report is not None
        assert is_symmetric(result.classification, edb=edb)
        expected = None
        for stage in ("magic", "simplified"):
            answers, stats = result.evaluate_stage(stage, edb)
            if expected is None:
                expected = answers
            assert answers == expected
            series.add(
                Measurement(
                    label=stage,
                    n=n,
                    facts=stats.facts,
                    inferences=stats.inferences,
                    seconds=stats.seconds,
                    answers=len(answers),
                )
            )
    series.show()


def test_e4_discardable_rule_observation():
    """The paper notes the factored program's two magic rules are
    interchangeable once a bp tuple hits l1 (or l2); with l1 == l2 the
    two rules derive identical magic facts — measured here."""
    program = example_44_program()
    goal = parse_query("p(5, Y)")
    edb = example_44_edb(scaled(20))
    result = optimize(program, goal, edb=edb)
    # Drop the second combined rule's magic rule; answers must not change.
    simplified = result.simplified.program
    magic_rules = [
        r
        for r in simplified.rules
        if r.head.predicate.startswith("m_") and len(r.body) > 1
    ]
    if len(magic_rules) >= 2:
        pruned = simplified.remove_rule(magic_rules[1])
        from repro.engine.seminaive import seminaive_eval

        full_db, _ = seminaive_eval(simplified, edb)
        pruned_db, _ = seminaive_eval(pruned, edb)
        assert full_db.query(result.magic.query_head) == pruned_db.query(
            result.magic.query_head
        )


@pytest.mark.benchmark(group="E4-symmetric")
def test_e4_timing(benchmark):
    program = example_44_program()
    goal = parse_query("p(5, Y)")
    edb = example_44_edb(scaled(30))
    result = optimize(program, goal, edb=edb)
    benchmark(lambda: result.evaluate_stage("simplified", edb))
