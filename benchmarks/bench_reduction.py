"""E13 — Examples 5.1 / 5.2: static-argument reduction (Lemmas 5.1/5.2).

Both example programs fall outside the Section 4 classes as written;
reducing their static first argument produces classifiable — and
factorable — programs.  The bench verifies the reductions, the
resulting certificates, answer preservation, and the cost of the
reduced+factored program versus plain Magic.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_query
from repro.engine.database import Database
from repro.workloads.examples import example_51_program, example_52_program

from benchmarks.conftest import scaled
from tests.conftest import oracle_answers


def edb_51(n: int, seed: int = 0) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "a": [(5,)],
            "d": [(rng.randrange(n), rng.randrange(n)) for _ in range(3 * n)],
            "exit": [(5, rng.randrange(n), rng.randrange(n)) for _ in range(n)]
            + [(5, 6, 0)],
        }
    )


def edb_52(n: int, seed: int = 1) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "d": [(rng.randrange(n), 5, rng.randrange(n)) for _ in range(3 * n)],
            "exit": [(5, 6, rng.randrange(n)) for _ in range(n // 2 + 1)],
        }
    )


def test_e13_example_51():
    series = Series("E13a: Example 5.1 — reduce static arg, then factor")
    program = example_51_program()
    goal = parse_query("p(5, 6, U)")
    result = optimize(program, goal)
    assert result.reduction is not None
    assert result.reduction.removed_positions == (0,)
    assert result.report is not None and result.report.factorable
    for n in (scaled(10), scaled(20), scaled(40)):
        edb = edb_51(n)
        expected = oracle_answers(program, goal, edb)
        answers, stats = result.answers(edb)
        assert answers == expected
        series.add(
            Measurement(
                label="reduced+factored", n=n, facts=stats.facts,
                inferences=stats.inferences, seconds=stats.seconds,
                answers=len(answers),
            )
        )
        # baseline: magic on the unreduced program
        unreduced = optimize(program, goal, try_reduction=False)
        assert unreduced.factored is None  # not classifiable as written
        m_answers, m_stats = unreduced.evaluate_stage("magic", edb)
        assert m_answers == expected
        series.add(
            Measurement(
                label="magic(unreduced)", n=n, facts=m_stats.facts,
                inferences=m_stats.inferences, seconds=m_stats.seconds,
                answers=len(m_answers),
            )
        )
    series.show()


def test_e13_example_52_pseudo_left_linear():
    series = Series("E13b: Example 5.2 — pseudo-left-linear reduction")
    program = example_52_program()
    goal = parse_query("p(5, 6, U)")
    result = optimize(program, goal)
    assert result.reduction is not None
    assert result.report is not None and result.report.factorable
    # Lemma 5.2: after reduction the recursive rule is left-linear.
    from repro.analysis.classify import RuleClass

    classes = {rc.rule_class for rc in result.classification.recursive_rules}
    assert classes == {RuleClass.LEFT_LINEAR}
    for n in (scaled(10), scaled(20)):
        edb = edb_52(n)
        expected = oracle_answers(program, goal, edb)
        answers, stats = result.answers(edb)
        assert answers == expected
        series.add(
            Measurement(
                label="reduced+factored", n=n, facts=stats.facts,
                inferences=stats.inferences, seconds=stats.seconds,
                answers=len(answers),
            )
        )
    series.show()


def test_e13_reduced_program_matches_paper_shape():
    """Example 5.1's reduced program: s@bf(Y,Z) with a(5) in the body."""
    result = optimize(example_51_program(), parse_query("p(5, 6, U)"))
    text = str(result.reduction.program)
    assert "a(5)" in text
    assert result.reduction.adornment == "bf"


@pytest.mark.benchmark(group="E13-reduction")
def test_e13_timing(benchmark):
    result = optimize(example_51_program(), parse_query("p(5, 6, U)"))
    edb = edb_51(scaled(20))
    benchmark(lambda: result.answers(edb))
