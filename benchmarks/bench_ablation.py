"""Ablations of the design choices DESIGN.md calls out.

A1 — Section 5 passes: how much of the E1 speedup does each stage of
the simplifier contribute?  (raw factored → +tautology/projection
passes → +uniform-equivalence deletion.)

A2 — Magic variant: plain Magic Sets vs supplementary Magic Sets on
the three-rule transitive closure (prefix sharing vs extra relations).

A3 — SIP body ordering: the unit-preserving reorder in `adorn` versus
naive left-to-right on a program written "backwards".
"""

from __future__ import annotations

import pytest

from repro.analysis.adornment import adorn
from repro.bench.harness import Measurement, Series
from repro.core.factoring import factor_magic
from repro.core.pipeline import optimize
from repro.core.simplify import simplify_factored
from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.transforms.magic import magic_sets
from repro.transforms.supplementary import supplementary_magic_sets
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, random_digraph_edb

from benchmarks.conftest import scaled


def test_a1_simplifier_pass_ablation():
    series = Series("A1: Section 5 pass ablation (3-rule TC, chain)")
    goal = parse_query("t(0, Y)")
    magic = magic_sets(adorn(three_rule_tc_program(), goal))
    factored = factor_magic(magic)
    with_props, _ = simplify_factored(factored, use_uniform_equivalence=False)
    with_uniform, _ = simplify_factored(factored, use_uniform_equivalence=True)

    n = scaled(40)
    edb = chain_edb(n)
    stages = [
        ("factored-raw", factored.program),
        ("+props-5.1..5.4", with_props.program),
        ("+uniform-equiv", with_uniform.program),
    ]
    baseline = None
    for label, program in stages:
        db, stats = seminaive_eval(program, edb)
        answers = db.query(magic.query_head)
        if baseline is None:
            baseline = answers
        assert answers == baseline  # every stage preserves answers
        series.add(
            Measurement(
                label=label, n=n, facts=stats.facts,
                inferences=stats.inferences, seconds=stats.seconds,
                answers=len(answers),
                extra={"rules": len(program)},
            )
        )
    series.note("each pass both shrinks the program and cuts evaluation cost")
    series.show()
    # the full simplifier must be the cheapest of the three
    rows = series.measurements
    assert rows[2].inferences <= rows[1].inferences <= rows[0].inferences


def test_a2_supplementary_vs_plain_magic():
    series = Series("A2: plain vs supplementary Magic Sets (3-rule TC)")
    goal = parse_query("t(0, Y)")
    adorned = adorn(three_rule_tc_program(), goal)
    plain = magic_sets(adorned)
    sup = supplementary_magic_sets(adorned)
    for n in (scaled(15), scaled(30), scaled(60)):
        edb = random_digraph_edb(n, 2 * n, seed=5)
        plain_db, plain_stats = seminaive_eval(plain.program, edb)
        sup_db, sup_stats = seminaive_eval(sup.program, edb)
        assert plain.answers(plain_db) == sup.answers(sup_db)
        series.add(
            Measurement(
                label="plain", n=n, facts=plain_stats.facts,
                inferences=plain_stats.inferences, seconds=plain_stats.seconds,
                answers=len(plain.answers(plain_db)),
            )
        )
        series.add(
            Measurement(
                label="supplementary", n=n, facts=sup_stats.facts,
                inferences=sup_stats.inferences, seconds=sup_stats.seconds,
                answers=len(sup.answers(sup_db)),
            )
        )
    series.note(
        "supplementary shares prefixes across magic+modified rules but "
        "materializes sup~ relations; factoring beats both (E1)"
    )
    series.show()


def test_a3_sip_ordering():
    series = Series("A3: unit-preserving SIP reorder vs written order")
    # written "backwards": the recursive literal precedes its binder,
    # so a naive left-to-right SIP would adorn it t@ff and explode.
    backwards = parse_program(
        """
        t(X, Y) :- t(W, Y), e(X, W).
        t(X, Y) :- e(X, Y).
        """
    )
    goal = parse_query("t(X, 5)")  # binds the second argument
    result = optimize(backwards, goal)
    assert result.report is not None and result.report.factorable
    n = scaled(40)
    edb = chain_edb(n)
    answers, stats = result.answers(edb)
    series.add(
        Measurement(
            label="reordered", n=n, facts=stats.facts,
            inferences=stats.inferences, seconds=stats.seconds,
            answers=len(answers),
        )
    )
    from tests.conftest import oracle_answers

    assert answers == oracle_answers(backwards, goal, edb)
    # single reachable adornment == unit program preserved
    assert len(result.adorned.adornments.get(("t", 2), {"x"})) <= 1
    series.note("the reorder keeps the program unit and factorable")
    series.show()


@pytest.mark.benchmark(group="A2-magic-variants")
def test_a2_timing_plain(benchmark):
    goal = parse_query("t(0, Y)")
    plain = magic_sets(adorn(three_rule_tc_program(), goal))
    edb = random_digraph_edb(scaled(30), scaled(60), seed=5)
    benchmark(lambda: seminaive_eval(plain.program, edb))


@pytest.mark.benchmark(group="A2-magic-variants")
def test_a2_timing_supplementary(benchmark):
    goal = parse_query("t(0, Y)")
    sup = supplementary_magic_sets(adorn(three_rule_tc_program(), goal))
    edb = random_digraph_edb(scaled(30), scaled(60), seed=5)
    benchmark(lambda: seminaive_eval(sup.program, edb))
