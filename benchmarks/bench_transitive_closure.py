"""E1 — Examples 1.1 / 4.2 / 5.3: the three-rule transitive closure.

Paper claim: after Magic Sets the recursive predicate stays binary, so
a single-source query still materializes O(n^2) facts on a chain; the
factored (and simplified) program is *unary* — the paper's four-rule
program — and materializes O(n) facts.  This bench regenerates the
scaling table on chains, random digraphs, and cycles.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series, speedup
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_query
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, cycle_edb, random_digraph_edb

from benchmarks.conftest import scaled


def run_stages(result, edb, n, series, stages=("magic", "simplified")):
    rows = {}
    for stage in stages:
        answers, stats = result.evaluate_stage(stage, edb)
        m = Measurement(
            label=stage,
            n=n,
            facts=stats.facts,
            inferences=stats.inferences,
            iterations=stats.iterations,
            seconds=stats.seconds,
            answers=len(answers),
        )
        series.add(m)
        rows[stage] = m
    return rows


def test_e1_chain_scaling():
    series = Series("E1a: 3-rule TC on chains, query t(0, Y) — magic vs factored")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    assert result.report.factorable
    for n in (scaled(20), scaled(40), scaled(80), scaled(160)):
        rows = run_stages(result, chain_edb(n), n, series)
        # The paper's separation: quadratic vs linear fact counts.
        assert rows["magic"].facts >= n * n // 5
        assert rows["simplified"].facts <= 3 * n
    series.note(
        "magic facts grow ~n^2/2 (binary t@bf); simplified grows ~3n (unary)"
    )
    series.show()


def test_e1_random_digraphs():
    series = Series("E1b: 3-rule TC on random digraphs (m = 2n)")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    for n in (scaled(30), scaled(60), scaled(120)):
        rows = run_stages(result, random_digraph_edb(n, 2 * n, seed=1), n, series)
        assert rows["simplified"].facts <= rows["magic"].facts
        assert rows["simplified"].answers == rows["magic"].answers
    series.show()


def test_e1_cycle_worst_case():
    series = Series("E1c: 3-rule TC on a cycle (every node reachable)")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    for n in (scaled(16), scaled(32), scaled(64)):
        rows = run_stages(result, cycle_edb(n), n, series)
        assert rows["simplified"].inferences <= rows["magic"].inferences
    series.note(
        f"speedup at largest n: "
        f"{speedup(rows['magic'], rows['simplified']):.1f}x inferences"
    )
    series.show()


def test_e1_paper_program_shape():
    """The simplified output is the paper's four-rule unary program."""
    result = optimize(three_rule_tc_program(), parse_query("t(5, Y)"))
    rules = {str(r) for r in result.simplified.program}
    assert rules == {
        "m_t@bf(5).",
        "m_t@bf(W) :- f_t@bf(W).",
        "f_t@bf(Y) :- m_t@bf(X), e(X, Y).",
        "query(Y) :- f_t@bf(Y).",
    }


@pytest.mark.benchmark(group="E1-tc")
def test_e1_timing_magic(benchmark):
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    edb = chain_edb(scaled(60))
    benchmark(lambda: result.evaluate_stage("magic", edb))


@pytest.mark.benchmark(group="E1-tc")
def test_e1_timing_factored(benchmark):
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    edb = chain_edb(scaled(60))
    benchmark(lambda: result.evaluate_stage("simplified", edb))
