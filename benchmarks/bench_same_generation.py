"""E8 — the same-generation negative control (Section 6.4's remark).

"The well-known same-generation program is the canonical example of a
program that cannot be factored, and in which the index fields
introduced in Counting are necessary."  The classifier must reject it
(its recursive occurrence shifts both argument positions), Magic must
still answer correctly, and forcing the bound/free factoring must
produce wrong answers — demonstrating the rejection is not spurious.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_query
from repro.engine.seminaive import seminaive_eval
from repro.workloads.examples import (
    same_generation_edb,
    same_generation_program,
    same_generation_query_node,
)

from benchmarks.conftest import scaled
from tests.conftest import oracle_answers


def test_e8_not_factorable_magic_works():
    series = Series("E8: same-generation — magic correct, factoring rejected")
    program = same_generation_program()
    depth = max(3, min(7, 3 + int(scaled(2))))
    for d in range(3, depth + 1):
        node = same_generation_query_node(d, 2)
        goal = parse_query(f"sg({node}, Y)")
        edb = same_generation_edb(d, 2)
        result = optimize(program, goal)
        assert not result.classification.ok
        assert result.factored is None
        answers, stats = result.answers(edb)
        assert answers == oracle_answers(program, goal, edb)
        series.add(
            Measurement(
                label="magic",
                n=2 ** d,
                facts=stats.facts,
                inferences=stats.inferences,
                seconds=stats.seconds,
                answers=len(answers),
            )
        )
    series.note("classifier reason: shifting recursive occurrence")
    series.show()


def test_e8_forced_factoring_is_wrong():
    """Forcing bp/fp factoring on same-generation breaks the answers:
    the rejection by the classifier is semantically necessary."""
    program = same_generation_program()
    node = same_generation_query_node(3, 2)
    goal = parse_query(f"sg({node}, Y)")
    edb = same_generation_edb(3, 2)
    result = optimize(program, goal, force_factor=True, simplify=False)
    magic_answers, _ = result.evaluate_stage("magic", edb)
    factored_answers, _ = result.evaluate_stage("factored", edb)
    assert magic_answers != factored_answers
    assert magic_answers < factored_answers  # spurious answers appear


@pytest.mark.benchmark(group="E8-same-generation")
def test_e8_timing_magic(benchmark):
    program = same_generation_program()
    node = same_generation_query_node(5, 2)
    goal = parse_query(f"sg({node}, Y)")
    edb = same_generation_edb(5, 2)
    result = optimize(program, goal)
    benchmark(lambda: result.answers(edb))
