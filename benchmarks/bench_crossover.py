"""E12 — the arity-reduction crossover sweep (Section 1's headline).

"Since the size of the relation computed is bounded by n^k, ... reducing
the arity (k) can result in an order of magnitude increase in the
efficiency of the algorithm."  This sweep measures the factored/magic
speedup as n grows on three graph families, exhibiting the growing gap
(magic is Θ(n^2) facts, factored Θ(n)) — and the small-n regime where
the two are comparable (the crossover).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series, speedup
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_query
from repro.workloads.examples import three_rule_tc_program
from repro.workloads.graphs import chain_edb, complete_edb, random_digraph_edb

from benchmarks.conftest import scaled


def test_e12_speedup_growth_chain():
    series = Series("E12a: factored/magic inference ratio on chains")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    ratios = []
    for n in (4, scaled(16), scaled(32), scaled(64), scaled(128)):
        _, magic_stats = result.evaluate_stage("magic", chain_edb(n))
        _, fact_stats = result.evaluate_stage("simplified", chain_edb(n))
        ratio = magic_stats.inferences / max(1, fact_stats.inferences)
        ratios.append(ratio)
        series.add(
            Measurement(
                label="ratio",
                n=n,
                facts=magic_stats.facts,
                inferences=magic_stats.inferences,
                extra={"speedup": f"{ratio:.1f}x"},
            )
        )
    assert ratios[-1] > ratios[0]  # the gap grows with n
    assert ratios[-1] > 10  # "order of magnitude" at modest sizes
    series.note("speedup grows with n: the n^k bound in action")
    series.show()


def test_e12_small_n_regime():
    """At tiny n the two programs are within a small constant — the
    'never less efficient' side of the claim."""
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    _, magic_stats = result.evaluate_stage("magic", chain_edb(3))
    _, fact_stats = result.evaluate_stage("simplified", chain_edb(3))
    assert fact_stats.inferences <= magic_stats.inferences


def test_e12_dense_graphs():
    series = Series("E12b: dense (complete) graphs — worst case for magic")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    for n in (scaled(8), scaled(12), scaled(16)):
        edb = complete_edb(n)
        a1, magic_stats = result.evaluate_stage("magic", edb)
        a2, fact_stats = result.evaluate_stage("simplified", edb)
        assert a1 == a2
        series.add(
            Measurement(
                label="magic", n=n, facts=magic_stats.facts,
                inferences=magic_stats.inferences,
                seconds=magic_stats.seconds, answers=len(a1),
            )
        )
        series.add(
            Measurement(
                label="factored", n=n, facts=fact_stats.facts,
                inferences=fact_stats.inferences,
                seconds=fact_stats.seconds, answers=len(a2),
            )
        )
    series.show()


def test_e12_sparse_random():
    series = Series("E12c: sparse random digraphs (m = n)")
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    for n in (scaled(50), scaled(100), scaled(200)):
        edb = random_digraph_edb(n, n, seed=9)
        a1, magic_stats = result.evaluate_stage("magic", edb)
        a2, fact_stats = result.evaluate_stage("simplified", edb)
        assert a1 == a2
        series.add(
            Measurement(
                label="magic", n=n, facts=magic_stats.facts,
                inferences=magic_stats.inferences, seconds=magic_stats.seconds,
                answers=len(a1),
            )
        )
        series.add(
            Measurement(
                label="factored", n=n, facts=fact_stats.facts,
                inferences=fact_stats.inferences, seconds=fact_stats.seconds,
                answers=len(a2),
            )
        )
    series.show()


@pytest.mark.benchmark(group="E12-crossover")
def test_e12_timing_dense_factored(benchmark):
    result = optimize(three_rule_tc_program(), parse_query("t(0, Y)"))
    edb = complete_edb(scaled(10))
    benchmark(lambda: result.evaluate_stage("simplified", edb))
