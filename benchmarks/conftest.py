"""Shared fixtures for the benchmark suite.

Every benchmark prints a paper-style table (via
:mod:`repro.bench.harness`) *and* registers a pytest-benchmark timing
for its headline configuration.  Input sizes scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_scale


def scaled(n: int, minimum: int = 2) -> int:
    return max(minimum, int(n * bench_scale()))


@pytest.fixture(scope="session")
def scale():
    return bench_scale()
