"""E14 — Example 7.1: factoring the factored output again (future work).

The factored/simplified Magic program for
``t(X,Y,Z) :- t(X,U,W), b(U,Y), d(Z)`` with query ``t(5,Y,Z)`` defines
a binary ``ft(Y, Z)`` whose arguments are *independently* constrained —
"this program can also be factored with respect to the predicate ft,
although we cannot establish this using the results presented in this
paper."  We apply the raw factoring transformation (Proposition 3.1,
with the recombination rule) to ``ft`` and verify empirically that the
answers are preserved while the relation sizes drop from |Y|·|Z| to
|Y|+|Z|.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.factoring import free_name
from repro.core.pipeline import optimize
from repro.datalog.literals import Literal
from repro.datalog.parser import parse_query
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine.database import Database
from repro.engine.seminaive import seminaive_eval
from repro.workloads.examples import example_71_program

from benchmarks.conftest import scaled
from tests.conftest import oracle_answers


def edb_71(n: int) -> Database:
    """An EDB on which the Example 7.1 re-factoring is exact.

    Reproduction finding (recorded in EXPERIMENTS.md): the paper's
    Section 7.1 claim is not EDB-independent.  The original ``ft`` is
    {base row} ∪ (reachable-Y × d); the re-factored ``ft1 × ft2`` also
    pairs the base row's Y with every other ``d`` value.  The two agree
    when the base Y is itself recursively reachable (here: ``b`` is a
    cycle) and the base Z lies in ``d`` — that EDB family is used here.
    """
    db = Database()
    db.add_facts("b", [(i, (i + 1) % n) for i in range(n)])
    db.add_facts("d", [(200 + i,) for i in range(n)])
    db.add_facts("e", [(5, 0, 200)])
    return db


def refactor_ft(program, ft: str):
    """Section 3's P' for ft: projections plus the recombination rule."""
    y, z = Variable("Y"), Variable("Z")
    ft_lit = Literal(ft, (y, z))
    ft1 = Literal(f"{ft}:1", (y,))
    ft2 = Literal(f"{ft}:2", (z,))
    return program.add_rules(
        [
            Rule(ft1, (ft_lit,)),
            Rule(ft2, (ft_lit,)),
            Rule(ft_lit, (ft1, ft2)),
        ]
    )


def test_e14_refactoring_preserves_answers():
    series = Series("E14: Example 7.1 — re-factoring ft(Y, Z)")
    program = example_71_program()
    goal = parse_query("t(5, Y, Z)")
    result = optimize(program, goal)
    assert result.report is not None and result.report.factorable
    ft = free_name(result.magic.goal.predicate)
    refactored = refactor_ft(result.simplified.program, ft)
    for n in (scaled(6), scaled(10), scaled(14)):
        edb = edb_71(n)
        expected = oracle_answers(program, goal, edb)
        base_db, base_stats = seminaive_eval(result.simplified.program, edb)
        refa_db, refa_stats = seminaive_eval(refactored, edb)
        assert base_db.query(result.magic.query_head) == expected
        assert refa_db.query(result.magic.query_head) == expected
        series.add(
            Measurement(
                label="factored-once", n=n, facts=base_stats.facts,
                inferences=base_stats.inferences, seconds=base_stats.seconds,
                answers=len(expected),
                extra={"ft_size": len(base_db.facts(ft))},
            )
        )
        series.add(
            Measurement(
                label="re-factored", n=n, facts=refa_stats.facts,
                inferences=refa_stats.inferences, seconds=refa_stats.seconds,
                answers=len(expected),
                extra={"ft_size": len(refa_db.facts(f"{ft}:1"))
                       + len(refa_db.facts(f"{ft}:2"))},
            )
        )
        # the unary projections are smaller than the binary relation
        assert (
            len(refa_db.facts(f"{ft}:1")) + len(refa_db.facts(f"{ft}:2"))
            <= len(base_db.facts(ft)) + 2
        )
    series.note("ft(Y,Z) is a cross product; ft1 + ft2 store it in linear space")
    series.show()


def test_e14_ft_relation_is_cross_product():
    """The premise: in this program ft(Y, Z) = ft1(Y) × ft2(Z)."""
    program = example_71_program()
    goal = parse_query("t(5, Y, Z)")
    result = optimize(program, goal)
    ft = free_name(result.magic.goal.predicate)
    db, _ = seminaive_eval(result.simplified.program, edb_71(8))
    facts = db.facts(ft)
    ys = {f[0] for f in facts}
    zs = {f[1] for f in facts}
    assert facts == {(y, z) for y in ys for z in zs}


def test_e14_caveat_acyclic_edb():
    """Reproduction finding: on an acyclic ``b`` the re-factoring is
    *not* answer-preserving — the Section 7.1 claim needs EDB-level
    conditions the paper leaves implicit (it is future-work prose)."""
    program = example_71_program()
    goal = parse_query("t(5, Y, Z)")
    result = optimize(program, goal)
    ft = free_name(result.magic.goal.predicate)
    refactored = refactor_ft(result.simplified.program, ft)
    acyclic = Database()
    acyclic.add_facts("b", [(i, i + 1) for i in range(6)])
    acyclic.add_facts("d", [(200 + i,) for i in range(6)])
    acyclic.add_facts("e", [(5, 0, 200)])
    base_db, _ = seminaive_eval(result.simplified.program, acyclic)
    refa_db, _ = seminaive_eval(refactored, acyclic)
    base = base_db.query(result.magic.query_head)
    refa = refa_db.query(result.magic.query_head)
    assert base < refa  # spurious (base-Y, other-Z) pairings appear


@pytest.mark.benchmark(group="E14-refactoring")
def test_e14_timing(benchmark):
    program = example_71_program()
    goal = parse_query("t(5, Y, Z)")
    result = optimize(program, goal)
    ft = free_name(result.magic.goal.predicate)
    refactored = refactor_ft(result.simplified.program, ft)
    edb = edb_71(scaled(10))
    benchmark(lambda: seminaive_eval(refactored, edb))
