"""E9 — Section 6.2 / Theorem 6.3: reducible separable recursions.

A reducible separable recursion with a full-selection query yields an
adorned program of left-linear rules with no left conjunction and
right-linear rules with no right conjunction — selection-pushing, hence
factorable (Theorem 6.3).  The factored evaluation is the instantiated
separable-schema evaluation of [7]; we measure it against Magic.
"""

from __future__ import annotations

import pytest

from repro.analysis.separable import analyze_separability
from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database

from benchmarks.conftest import scaled
from tests.conftest import oracle_answers

SEPARABLE = parse_program(
    """
    t(X, Y) :- t(X, W), down(W, Y).
    t(X, Y) :- up(X, U), t(U, Y).
    t(X, Y) :- flat(X, Y).
    """
)


def separable_edb(n: int) -> Database:
    """Two chains meeting at a flat crossing — both rules exercised."""
    db = Database()
    db.add_facts("up", [(i, i + 1) for i in range(n)])
    db.add_facts("down", [(100 + i, 100 + i + 1) for i in range(n)])
    db.add_facts("flat", [(n, 100)])
    return db


def test_e9_separability_analysis():
    report = analyze_separability(SEPARABLE, "t")
    assert report.separable and report.reducible
    assert set(report.t_h_sets) == {frozenset({0}), frozenset({1})}


def test_e9_factorable_and_scaling():
    series = Series("E9: reducible separable recursion, query t(0, Y)")
    goal = parse_query("t(0, Y)")
    result = optimize(SEPARABLE, goal)
    assert result.report is not None and result.report.factorable
    for n in (scaled(20), scaled(40), scaled(80)):
        edb = separable_edb(n)
        expected = oracle_answers(SEPARABLE, goal, edb)
        for stage in ("magic", "simplified"):
            answers, stats = result.evaluate_stage(stage, edb)
            assert answers == expected
            series.add(
                Measurement(
                    label=stage,
                    n=n,
                    facts=stats.facts,
                    inferences=stats.inferences,
                    seconds=stats.seconds,
                    answers=len(answers),
                )
            )
    series.note("factored == instantiated separable evaluation schema of [7]")
    series.show()


def test_e9_other_full_selection():
    """The symmetric full selection t(X, 100+n) is factorable too."""
    n = scaled(20)
    goal = parse_query(f"t(X, {100 + n})")
    result = optimize(SEPARABLE, goal)
    assert result.report is not None and result.report.factorable
    edb = separable_edb(n)
    answers, _ = result.answers(edb)
    assert answers == oracle_answers(SEPARABLE, goal, edb)


def test_e9_nonreducible_not_claimed():
    """An A-nonempty separable recursion (fixed variable in t_h) is not
    reducible; Theorem 6.3 makes no claim and we assert none."""
    program = parse_program(
        """
        t(X, Y) :- a(X, E), t(X, W), b(E, W, Y).
        t(X, Y) :- flat(X, Y).
        """
    )
    report = analyze_separability(program, "t")
    assert not report.reducible


@pytest.mark.benchmark(group="E9-separable")
def test_e9_timing(benchmark):
    goal = parse_query("t(0, Y)")
    result = optimize(SEPARABLE, goal)
    edb = separable_edb(scaled(40))
    benchmark(lambda: result.evaluate_stage("simplified", edb))
