"""E6 / E7 — Section 6.4: Counting vs factoring.

E6 (Theorem 6.4): for right-linear-only factorable programs, the
factored Magic program is *identical* to the Counting program with its
index fields deleted — checked structurally and by run-time parity.

E7: with a left-linear rule, Counting's magic self-loop diverges
(detected syntactically and observed dynamically via the fact budget)
while the factored program terminates in linear cost.  The paper also
notes Counting *with* indices pays for index bookkeeping even when it
terminates — visible in the with-index column.
"""

from __future__ import annotations

import pytest

from repro.analysis.adornment import adorn
from repro.analysis.isomorphism import programs_isomorphic
from repro.bench.harness import Measurement, Series
from repro.core.factoring import free_name
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query
from repro.engine.seminaive import seminaive_eval
from repro.engine.stats import NonTerminationError
from repro.transforms.counting import (
    counting,
    counting_diverges,
    delete_index_fields,
    refine_counting,
)
from repro.transforms.magic import magic_name
from repro.workloads.graphs import chain_edb

from benchmarks.conftest import scaled

RIGHT_TC = parse_program(
    "t(X, Y) :- e(X, Z), t(Z, Y).\nt(X, Y) :- e(X, Y)."
)
LEFT_TC = parse_program(
    "t(X, Y) :- t(X, Z), e(Z, Y).\nt(X, Y) :- e(X, Y)."
)


def test_e6_structural_identity():
    """Theorem 6.4, structurally."""
    goal = parse_query("t(0, Y)")
    adorned = adorn(RIGHT_TC, goal)
    no_index, _ = delete_index_fields(refine_counting(counting(adorned)))
    factored = optimize(RIGHT_TC, goal, force_factor=True).simplified
    predicate = adorned.goal.predicate
    renaming = {
        f"cnt_{predicate}": magic_name(predicate),
        f"ans_{predicate}": free_name(predicate),
    }
    assert programs_isomorphic(no_index, factored.program, renaming)


def test_e6_runtime_parity():
    series = Series("E6: right-linear TC — counting (with/without indices) vs factored")
    goal = parse_query("t(0, Y)")
    adorned = adorn(RIGHT_TC, goal)
    with_index = refine_counting(counting(adorned))
    no_index, query_head = delete_index_fields(with_index)
    factored = optimize(RIGHT_TC, goal, force_factor=True)
    for n in (scaled(20), scaled(40), scaled(80)):
        edb = chain_edb(n)
        db1, stats1 = seminaive_eval(with_index.program, edb)
        series.add(
            Measurement(
                label="counting+idx", n=n, facts=stats1.facts,
                inferences=stats1.inferences, seconds=stats1.seconds,
                answers=len(with_index.answers(db1)),
            )
        )
        db2, stats2 = seminaive_eval(no_index, edb)
        series.add(
            Measurement(
                label="counting-idx", n=n, facts=stats2.facts,
                inferences=stats2.inferences, seconds=stats2.seconds,
                answers=len(db2.query(query_head)),
            )
        )
        answers3, stats3 = factored.evaluate_stage("simplified", edb)
        series.add(
            Measurement(
                label="factored", n=n, facts=stats3.facts,
                inferences=stats3.inferences, seconds=stats3.seconds,
                answers=len(answers3),
            )
        )
        assert with_index.answers(db1) == db2.query(query_head) == answers3
        # index-free counting and factored are the same program: parity.
        assert stats2.facts == stats3.facts
        assert stats2.inferences == stats3.inferences
        # indices cost extra facts (one per derivation path).
        assert stats1.facts >= stats2.facts
    series.note("counting-idx == factored exactly (Theorem 6.4)")
    series.show()


def test_e7_left_linear_divergence():
    series = Series("E7: left-linear TC — counting diverges, factoring wins")
    goal = parse_query("t(0, Y)")
    adorned = adorn(LEFT_TC, goal)
    cnt = counting(adorned)
    assert counting_diverges(cnt)  # syntactic detection
    budget = 20_000
    try:
        seminaive_eval(cnt.program, chain_edb(scaled(12)), max_facts=budget)
        diverged = False
    except NonTerminationError as err:
        diverged = True
        series.add(
            Measurement(
                label="counting", n=scaled(12), facts=err.facts,
                extra={"status": "DIVERGED (budget hit)"},
            )
        )
    assert diverged
    factored = optimize(LEFT_TC, goal)
    assert factored.report.factorable
    answers, stats = factored.answers(chain_edb(scaled(12)))
    series.add(
        Measurement(
            label="factored", n=scaled(12), facts=stats.facts,
            inferences=stats.inferences, seconds=stats.seconds,
            answers=len(answers), extra={"status": "terminated"},
        )
    )
    series.show()


@pytest.mark.benchmark(group="E6-counting")
def test_e6_timing_counting_with_indices(benchmark):
    goal = parse_query("t(0, Y)")
    cnt = refine_counting(counting(adorn(RIGHT_TC, goal)))
    edb = chain_edb(scaled(40))
    benchmark(lambda: seminaive_eval(cnt.program, edb))


@pytest.mark.benchmark(group="E6-counting")
def test_e6_timing_factored(benchmark):
    goal = parse_query("t(0, Y)")
    result = optimize(RIGHT_TC, goal, force_factor=True)
    edb = chain_edb(scaled(40))
    benchmark(lambda: result.evaluate_stage("simplified", edb))
