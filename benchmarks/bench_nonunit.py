"""E16 — Section 7.3: factoring inner predicates of non-unit programs.

The paper's open problem, probed empirically: when the outer program
does not correlate a subgoal with its answers (the unary ``q(Y)``
caller), factoring the inner right-linear ``p^bf`` is valid and cheaper;
when it does (the binary ``q(X, Y)`` caller, or the combined ``P2``),
the factored program produces spurious answers.  The
``decouples_subgoals`` heuristic's verdicts are cross-checked against
ground truth on every workload.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.nonunit import (
    decouples_subgoals,
    factor_inner,
    inner_factoring_valid_on,
)
from repro.datalog.parser import parse_program, parse_query
from repro.engine.database import Database

from benchmarks.conftest import scaled

P1 = """
p(X, Y) :- b(X, U), p(U, Y).
p(X, Y) :- e(X, Y).
"""


def edb_72(seed: int, n: int) -> Database:
    rng = random.Random(seed)
    return Database.from_dict(
        {
            "a": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
            "b": [(i, i + 1) for i in range(n)]
            + [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
            "e": [(rng.randrange(n), rng.randrange(n)) for _ in range(n)],
        }
    )


def test_e16_unary_caller_factoring_valid_and_cheaper():
    series = Series("E16: inner factoring of p@bf under q(Y) :- a(X,Z), p(Z,Y)")
    program = parse_program("q(Y) :- a(X, Z), p(Z, Y).\n" + P1)
    goal = parse_query("q(Y)")
    assert decouples_subgoals(program, goal, "p")
    for n in (scaled(15), scaled(30), scaled(60)):
        edb = edb_72(seed=2, n=n)
        candidate = factor_inner(program, goal, "p")
        magic_answers, magic_stats = candidate.answers_magic(edb)
        factored_answers, factored_stats = candidate.answers_factored(edb)
        assert magic_answers == factored_answers
        series.add(
            Measurement(
                label="magic", n=n, facts=magic_stats.facts,
                inferences=magic_stats.inferences, seconds=magic_stats.seconds,
                answers=len(magic_answers),
            )
        )
        series.add(
            Measurement(
                label="inner-factored", n=n, facts=factored_stats.facts,
                inferences=factored_stats.inferences,
                seconds=factored_stats.seconds,
                answers=len(factored_answers),
            )
        )
        assert factored_stats.facts <= magic_stats.facts
    series.note("multiple seeds share one unary fp relation: arity reduction "
                "survives the non-unit context")
    series.show()


def test_e16_correlating_caller_breaks():
    series = Series("E16b: correlating caller q(X, Y) — factoring invalid")
    program = parse_program("q(X, Y) :- a(X, Z), p(Z, Y).\n" + P1)
    goal = parse_query("q(X, Y)")
    assert not decouples_subgoals(program, goal, "p")
    broken = 0
    trials = 10
    for seed in range(trials):
        edb = edb_72(seed, n=scaled(10))
        if not inner_factoring_valid_on(program, goal, "p", edb):
            broken += 1
    series.add(
        Measurement(
            label="invalid-EDBs", n=trials, answers=broken,
            extra={"heuristic": "couples (correctly rejected)"},
        )
    )
    assert broken > 0
    series.show()


def test_e16_heuristic_agrees_with_ground_truth():
    """Where the heuristic says 'decouples', factoring must hold on all
    sampled EDBs; this is the empirical soundness check of the E16
    condition (the converse need not hold — it is only sufficient)."""
    cases = [
        ("q(Y) :- a(X, Z), p(Z, Y).", "q(Y)"),
        ("q(Y) :- a(X, Z), p(Z, Y), g(Y).", "q(Y)"),
    ]
    for outer, goal_text in cases:
        program = parse_program(outer + "\n" + P1)
        goal = parse_query(goal_text)
        if decouples_subgoals(program, goal, "p"):
            for seed in range(6):
                edb = edb_72(seed, n=scaled(8))
                edb.add_facts("g", [(i,) for i in range(scaled(8))])
                assert inner_factoring_valid_on(program, goal, "p", edb), (
                    outer,
                    seed,
                )


@pytest.mark.benchmark(group="E16-nonunit")
def test_e16_timing_inner_factored(benchmark):
    program = parse_program("q(Y) :- a(X, Z), p(Z, Y).\n" + P1)
    goal = parse_query("q(Y)")
    candidate = factor_inner(program, goal, "p")
    edb = edb_72(seed=2, n=scaled(30))
    benchmark(lambda: candidate.answers_factored(edb))
