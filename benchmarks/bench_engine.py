"""E15 — engine microbenchmarks: the substrate sanity check.

The paper's separations are asymptotic claims about *evaluation cost*;
they are only observable if the engine's per-inference cost is roughly
constant.  This bench measures (a) semi-naive vs naive redundancy,
(b) index effectiveness on joins, (c) per-inference wall-time stability
across input sizes.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.datalog.parser import parse_program
from repro.engine.database import Database, Relation
from repro.engine.naive import naive_eval
from repro.engine.seminaive import seminaive_eval
from repro.workloads.graphs import chain_edb, grid_edb

from benchmarks.conftest import scaled

TC = parse_program("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).")


def test_e15_seminaive_vs_naive():
    series = Series("E15a: semi-naive vs naive on chains")
    for n in (scaled(10), scaled(20), scaled(40)):
        edb = chain_edb(n)
        _, naive_stats = naive_eval(TC, edb)
        _, semi_stats = seminaive_eval(TC, edb)
        series.add(
            Measurement(
                label="naive", n=n, facts=naive_stats.facts,
                inferences=naive_stats.inferences, seconds=naive_stats.seconds,
            )
        )
        series.add(
            Measurement(
                label="semi-naive", n=n, facts=semi_stats.facts,
                inferences=semi_stats.inferences, seconds=semi_stats.seconds,
            )
        )
        assert semi_stats.facts == naive_stats.facts
        # naive rederives every fact every round: Θ(n) redundancy factor.
        assert naive_stats.inferences > semi_stats.inferences
    series.note("semi-naive inference count is exactly the distinct-derivation count")
    series.show()


def test_e15_seminaive_inferences_linear_on_chain():
    """On a chain, semi-naive TC does exactly one inference per t fact."""
    n = scaled(50)
    _, stats = seminaive_eval(TC, chain_edb(n))
    t_facts = n * (n - 1) // 2
    assert stats.facts == t_facts
    assert stats.inferences == t_facts


def test_e15_index_lookup():
    series = Series("E15b: indexed vs scan lookup on a relation")
    import time

    for n in (scaled(2000), scaled(8000)):
        rel = Relation("e", 2)
        from repro.datalog.terms import Constant

        for i in range(n):
            rel.add((Constant(i % 100), Constant(i)))
        key = (Constant(7),)
        start = time.perf_counter()
        for _ in range(200):
            rel.lookup((0,), key)
        indexed = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(200):
            [t for t in rel.tuples if t[0] == key[0]]
        scanned = time.perf_counter() - start
        series.add(
            Measurement(
                label="lookup", n=n, seconds=indexed,
                extra={"scan_ms": f"{scanned * 1000:.2f}"},
            )
        )
        assert indexed < scanned
    series.show()


def test_e15_grid_workload():
    series = Series("E15c: TC on grids (branching joins)")
    for side in (scaled(4), scaled(6), scaled(8)):
        edb = grid_edb(side, side)
        _, stats = seminaive_eval(TC, edb)
        series.add(
            Measurement(
                label="semi-naive", n=side * side, facts=stats.facts,
                inferences=stats.inferences, seconds=stats.seconds,
            )
        )
    series.show()


@pytest.mark.benchmark(group="E15-engine")
def test_e15_timing_seminaive(benchmark):
    edb = chain_edb(scaled(60))
    benchmark(lambda: seminaive_eval(TC, edb))


@pytest.mark.benchmark(group="E15-engine")
def test_e15_timing_naive(benchmark):
    edb = chain_edb(scaled(60))
    benchmark(lambda: naive_eval(TC, edb))
