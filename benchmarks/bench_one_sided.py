"""E10 — Section 6.1 / Theorem 6.2: simple one-sided recursions.

A simple one-sided recursion, expanded to the canonical form (1), is
left-linear for one full selection and right-linear for the other; both
are selection-pushing and hence factorable.  We check the A/V-graph
recognizer, the expansion device, and measure the factored evaluation
for both query forms.
"""

from __future__ import annotations

import pytest

from repro.analysis.avgraph import expand_rule, is_one_sided, is_simple_one_sided
from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.datalog.program import Program
from repro.engine.database import Database

from benchmarks.conftest import scaled
from tests.conftest import oracle_answers

# canonical form (1): p(A, B) :- p(A, C), c(C, D, B)
ONE_SIDED = parse_program(
    """
    p(A, B) :- p(A, C), c(C, D, B).
    p(A, B) :- exit(A, B).
    """
)


def one_sided_edb(n: int) -> Database:
    db = Database()
    db.add_facts("c", [(i, 0, i + 1) for i in range(n)])
    db.add_facts("exit", [(j, 0) for j in range(5)])
    return db


def test_e10_recognizers():
    rule = ONE_SIDED.rules[0]
    assert is_one_sided(rule, "p")
    assert is_simple_one_sided(rule, "p")
    # a weight-2 shifting recursion is not (yet) in form (1):
    swap = parse_rule("p(A, B) :- p(B, C), c(C, A).")
    assert not is_one_sided(swap, "p")


def test_e10_both_full_selections_factor():
    series = Series("E10: simple one-sided recursion, both full selections")
    for goal_text in ("p(0, B)", "p(A, 3)"):
        goal = parse_query(goal_text)
        result = optimize(ONE_SIDED, goal)
        assert result.report is not None and result.report.factorable, goal_text
        for n in (scaled(20), scaled(40)):
            edb = one_sided_edb(n)
            expected = oracle_answers(ONE_SIDED, goal, edb)
            answers, stats = result.answers(edb)
            assert answers == expected
            series.add(
                Measurement(
                    label=f"factored[{goal_text}]",
                    n=n,
                    facts=stats.facts,
                    inferences=stats.inferences,
                    seconds=stats.seconds,
                    answers=len(answers),
                )
            )
    series.show()


def test_e10_expansion_brings_weight2_into_form():
    """A weight-2 cycle becomes weight-1 (fixed) after one expansion —
    the 'expanded so that it is of the form of Eq. (1)' device."""
    from repro.analysis.separable import fixed_variables

    swap = parse_rule("p(A, B) :- p(B, A), mark(A).")
    assert fixed_variables(swap, "p") == set()
    expanded = expand_rule(swap, "p", 1)
    # After one self-substitution the swap composes with itself: both
    # positions carry the head variable again (weight-1 cycles).
    fixed = fixed_variables(expanded, "p")
    head_vars = set(expanded.head.variables())
    assert fixed == head_vars and len(fixed) == 2


def test_e10_example_71_is_one_sided_and_factors():
    from repro.workloads.examples import example_71_program

    program = example_71_program()
    assert is_one_sided(program.rules[0], "t")
    goal = parse_query("t(5, Y, Z)")
    result = optimize(program, goal)
    assert result.report is not None and result.report.factorable
    edb = Database.from_dict(
        {
            "b": [(i, i + 1) for i in range(scaled(15))],
            "d": [(9,), (10,)],
            "e": [(5, i, 9) for i in range(4)],
        }
    )
    answers, _ = result.answers(edb)
    assert answers == oracle_answers(program, goal, edb)


@pytest.mark.benchmark(group="E10-one-sided")
def test_e10_timing(benchmark):
    goal = parse_query("p(0, B)")
    result = optimize(ONE_SIDED, goal)
    edb = one_sided_edb(scaled(40))
    benchmark(lambda: result.answers(edb))
