"""E3 — Example 4.3: selection-pushing programs, instance-certified.

The Example 4.3 program's conditions relate *distinct* EDB predicates
(``free_exit ⊆ r1``, ``bound_first ⊆ l1``), so they cannot hold
syntactically; the paper's closing discussion proposes checking them at
run time against the query's EDB.  This bench (a) certifies and runs
the program on a satisfying EDB, (b) reproduces the two counterexample
EDBs from the text, where forced factoring produces exactly the
spurious answers the paper derives.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.datalog.parser import parse_query
from repro.workloads.examples import (
    example_43_edb,
    example_43_program,
    example_43_violating_edbs,
)

from benchmarks.conftest import scaled
from tests.conftest import answer_values


def test_e3_instance_certified_run():
    series = Series("E3: Example 4.3 — instance-certified factoring")
    program = example_43_program()
    goal = parse_query("p(5, Y)")
    for n in (scaled(20), scaled(40), scaled(80)):
        edb = example_43_edb(n)
        result = optimize(program, goal, edb=edb)
        assert result.report is not None and result.report.factorable
        for stage in ("magic", "simplified"):
            answers, stats = result.evaluate_stage(stage, edb)
            series.add(
                Measurement(
                    label=stage,
                    n=n,
                    facts=stats.facts,
                    inferences=stats.inferences,
                    seconds=stats.seconds,
                    answers=len(answers),
                )
            )
        magic_answers, _ = result.evaluate_stage("magic", edb)
        simplified_answers, _ = result.evaluate_stage("simplified", edb)
        assert magic_answers == simplified_answers
    series.show()


def test_e3_counterexamples_reproduce_paper():
    """The two EDBs from the text make forced factoring unsound."""
    series = Series("E3b: Example 4.3 violated-condition EDBs")
    program = example_43_program()
    for name, (edb, goal) in example_43_violating_edbs().items():
        result = optimize(program, goal, force_factor=True, simplify=False)
        magic_answers, _ = result.evaluate_stage("magic", edb)
        factored_answers, _ = result.evaluate_stage("factored", edb)
        series.add(
            Measurement(
                label=f"magic[{name}]", n=0, answers=len(magic_answers)
            )
        )
        series.add(
            Measurement(
                label=f"factored[{name}]", n=0, answers=len(factored_answers)
            )
        )
        assert magic_answers < factored_answers
        # The paper's specific spurious answers:
        if name == "bound_first":
            assert (8,) in answer_values(factored_answers)
            assert (8,) not in answer_values(magic_answers)
        if name == "free_exit":
            assert (7,) in answer_values(factored_answers)
            assert (7,) not in answer_values(magic_answers)
        # ... and the run-time check rejects these EDBs:
        checked = optimize(program, goal, edb=edb)
        assert checked.factored is None
    series.note("factored answer sets strictly exceed magic: unsound, as in the text")
    series.show()


@pytest.mark.benchmark(group="E3-selection-pushing")
def test_e3_timing_simplified(benchmark):
    program = example_43_program()
    goal = parse_query("p(5, Y)")
    edb = example_43_edb(scaled(40))
    result = optimize(program, goal, edb=edb)
    benchmark(lambda: result.evaluate_stage("simplified", edb))
