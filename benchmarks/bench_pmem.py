"""E2 — Examples 1.2 / 4.6: list membership with a property filter.

Paper claim: on an n-element list where every member satisfies ``p``,
Prolog (goal-directed evaluation) materializes the O(n^2) facts
``pmem(xi, [xj, ..., xn])``, while the factored program — with
structure-shared lists — computes the answers in linear time.

The top-down baseline is the tabled evaluator; its table-entry count is
exactly the paper's fact count.  The factored program's inference count
is the linear-time claim.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Measurement, Series
from repro.core.pipeline import optimize
from repro.engine.seminaive import seminaive_eval
from repro.engine.topdown import topdown_eval
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query

from benchmarks.conftest import scaled


def test_e2_scaling():
    series = Series("E2: pmem over an n-list — tabled top-down vs factored")
    program = pmem_program()
    for n in (scaled(10), scaled(20), scaled(40), scaled(80)):
        goal = pmem_query(n)
        edb = pmem_edb(n)  # all members satisfy p: the paper's worst case

        td = topdown_eval(program, edb, goal)
        series.add(
            Measurement(
                label="topdown(Prolog)",
                n=n,
                facts=td.table_entries,
                inferences=td.resolution_steps,
                seconds=td.seconds,
                answers=len(td.answers),
            )
        )
        # Paper: O(n^2) facts — exactly n(n+1)/2 table entries here.
        assert td.table_entries == n * (n + 1) // 2

        result = optimize(program, goal)
        assert result.report.factorable
        answers, stats = result.answers(edb)
        series.add(
            Measurement(
                label="factored",
                n=n,
                facts=stats.facts,
                inferences=stats.inferences,
                iterations=stats.iterations,
                seconds=stats.seconds,
                answers=len(answers),
            )
        )
        assert answers == td.answers
        # Paper: linear time — facts are (n+1) goals + n answers + n query.
        assert stats.facts <= 3 * n + 2
    series.note("top-down table entries = n(n+1)/2; factored facts <= 3n+2")
    series.show()


def test_e2_selectivity():
    """Only some members satisfy p: answers shrink, costs stay shaped."""
    series = Series("E2b: pmem with 25% selectivity")
    program = pmem_program()
    for n in (scaled(20), scaled(40)):
        goal = pmem_query(n)
        edb = pmem_edb(n, satisfying=range(0, n, 4))
        result = optimize(program, goal)
        answers, stats = result.answers(edb)
        series.add(
            Measurement(
                label="factored",
                n=n,
                facts=stats.facts,
                inferences=stats.inferences,
                seconds=stats.seconds,
                answers=len(answers),
            )
        )
        assert len(answers) == len(range(0, n, 4))
    series.show()


def test_e2_paper_program_shape():
    """Example 4.6's final program, exactly."""
    result = optimize(pmem_program(), pmem_query(3))
    rules = {str(r) for r in result.simplified.program}
    assert rules == {
        "m_pmem@fb([0, 1, 2]).",
        "m_pmem@fb(T) :- m_pmem@fb([H | T]).",
        "f_pmem@fb(X) :- m_pmem@fb([X | T]), p(X).",
        "query(X) :- f_pmem@fb(X).",
    }


@pytest.mark.benchmark(group="E2-pmem")
def test_e2_timing_topdown(benchmark):
    n = scaled(30)
    program, edb, goal = pmem_program(), pmem_edb(n), pmem_query(n)
    benchmark(lambda: topdown_eval(program, edb, goal))


@pytest.mark.benchmark(group="E2-pmem")
def test_e2_timing_factored(benchmark):
    n = scaled(30)
    program, edb, goal = pmem_program(), pmem_edb(n), pmem_query(n)
    result = optimize(program, goal)
    benchmark(lambda: seminaive_eval(result.best_program(), edb))
