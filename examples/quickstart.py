#!/usr/bin/env python
"""Quickstart: the paper's headline example, end to end.

Runs the three-rule transitive closure (Example 1.1) through the full
pipeline — adornment, Magic Sets, factorability analysis, factoring,
Section 5 simplification — prints every intermediate program, and
compares evaluation costs on a chain graph.

Usage:  python examples/quickstart.py [n]
"""

import sys

from repro import (
    chain_edb,
    optimize,
    parse_query,
    three_rule_tc_program,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    program = three_rule_tc_program()
    goal = parse_query("t(0, Y)")

    print("=== original program (Example 1.1) ===")
    print(program)

    result = optimize(program, goal)

    print("\n=== adorned program ===")
    print(result.adorned.program)

    print("\n=== Magic Sets program (Fig. 1) ===")
    print(result.magic.program)

    print("\n=== classification ===")
    for rc in result.classification.rules:
        print(f"  {rc.rule_class.value:14s}  {rc.rule}")
    print(f"certified: {result.report.certified_by}")

    print("\n=== factored program (Fig. 2) ===")
    print(result.factored.program)

    print("\n=== simplified program (the paper's 4-rule unary program) ===")
    print(result.simplified.program)

    print(f"\n=== evaluation on a {n}-node chain ===")
    edb = chain_edb(n)
    for stage in ("magic", "simplified"):
        answers, stats = result.evaluate_stage(stage, edb)
        print(
            f"{stage:10s}: {len(answers):5d} answers | {stats.facts:8d} facts | "
            f"{stats.inferences:9d} inferences | {stats.seconds * 1000:8.1f} ms"
        )
    print(
        "\nThe Magic program materializes the binary t@bf relation "
        "(~n^2/2 facts); the factored program is unary (~3n facts) — "
        "the paper's arity-reduction payoff."
    )


if __name__ == "__main__":
    main()
