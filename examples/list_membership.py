#!/usr/bin/env python
"""Example 1.2 / 4.6: filtered list membership with function symbols.

The scenario the paper motivates: compute every member of a given list
satisfying a predicate ``p``.  A Prolog-style (tabled top-down)
evaluation materializes the O(n^2) suffix facts; the factored Magic
program walks the list once, in linear time, thanks to structure-shared
list terms.

Usage:  python examples/list_membership.py [n]
"""

import sys

from repro import optimize, seminaive_eval, topdown_eval
from repro.workloads.lists import pmem_edb, pmem_program, pmem_query


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    program = pmem_program()
    goal = pmem_query(n)
    edb = pmem_edb(n)  # every member satisfies p: the worst case

    print("=== program (Example 1.2) ===")
    print(program)
    print(f"\nquery: pmem(X, [0, 1, ..., {n - 1}])?")

    print("\n--- Prolog-style tabled top-down evaluation ---")
    td = topdown_eval(program, edb, goal)
    print(f"answers:        {len(td.answers)}")
    print(f"subgoals:       {td.subgoals}")
    print(f"table entries:  {td.table_entries}   (= n(n+1)/2 = {n * (n + 1) // 2})")
    print(f"time:           {td.seconds * 1000:.1f} ms")

    print("\n--- Magic Sets + factoring ---")
    result = optimize(program, goal)
    print(f"certified: {result.report.certified_by}")
    print("\nfactored + simplified program (Example 4.6's final form):")
    print(result.simplified.program)

    answers, stats = result.answers(edb)
    print(f"\nanswers:     {len(answers)}")
    print(f"facts:       {stats.facts}   (linear: goals + answers)")
    print(f"inferences:  {stats.inferences}")
    print(f"time:        {stats.seconds * 1000:.1f} ms")

    assert answers == td.answers
    print(
        f"\nSame answers; table entries {td.table_entries} vs facts "
        f"{stats.facts} — the O(n^2) -> O(n) reduction of Example 4.6."
    )


if __name__ == "__main__":
    main()
