#!/usr/bin/env python
"""Program inspector: classify and optimize any program + query.

A small CLI over the analysis toolkit.  Given a Datalog file (or one of
the built-in paper examples) and a query, it reports:

* the adorned program and rule classification (Definitions 4.1-4.3),
* one-sidedness (Theorem 6.1) and separability (Definition 6.4) of the
  recursion,
* which factorability theorem (if any) certifies the Magic program,
* the final optimized program, with the simplification trace.

Usage:
    python examples/program_inspector.py <program.dl> "<query>"
    python examples/program_inspector.py --example tc "t(5, Y)"
    python examples/program_inspector.py --example sg "sg(1, Y)"
"""

import sys

from repro import optimize, parse_program, parse_query
from repro.analysis.avgraph import is_one_sided, is_simple_one_sided
from repro.analysis.dependency import DependencyGraph
from repro.analysis.separable import analyze_separability

EXAMPLES = {
    "tc": "three_rule_tc_program",
    "43": "example_43_program",
    "44": "example_44_program",
    "45": "example_45_program",
    "51": "example_51_program",
    "52": "example_52_program",
    "71": "example_71_program",
    "sg": "same_generation_program",
}


def load_program(args):
    if args[0] == "--example":
        import repro.workloads.examples as ex

        return getattr(ex, EXAMPLES[args[1]])(), args[2]
    with open(args[0]) as handle:
        return parse_program(handle.read()), args[1]


def main() -> None:
    if len(sys.argv) < 3:
        print(__doc__)
        sys.exit(1)
    program, query_text = load_program(sys.argv[1:])
    goal = parse_query(query_text)

    print("=== program ===")
    print(program)
    print(f"\nquery: {goal}?")

    graph = DependencyGraph(program)
    recursive = sorted(
        sig for sig in graph.recursive_signatures() if program.is_idb(sig)
    )
    print(f"recursive predicates: {recursive or '(none)'}")

    for name, arity in recursive:
        rules = [r for r in program.rules_for(name) if r.body_literals(name)]
        linear = [r for r in rules if len(r.body_literals(name)) == 1]
        if len(linear) == len(rules):
            sided = all(is_one_sided(r, name) for r in rules)
            simple = all(is_simple_one_sided(r, name) for r in rules)
            print(f"one-sided ({name}): {sided} (simple: {simple})")
            report = analyze_separability(program, name)
            print(
                f"separable ({name}): {report.separable} "
                f"(reducible: {report.reducible})"
            )
            for reason in report.reasons[:3]:
                print(f"    - {reason}")

    result = optimize(program, goal)

    if result.classification is not None:
        print("\n=== classification (standard form) ===")
        for rc in result.classification.rules:
            line = f"  {rc.rule_class.value:14s}  {rc.rule}"
            if rc.reason:
                line += f"   [{rc.reason}]"
            print(line)

    if result.reduction is not None:
        print(
            f"\nstatic-argument reduction applied: removed positions "
            f"{list(result.reduction.removed_positions)}"
        )

    print("\n=== factorability ===")
    if result.report is None:
        if result.classification is not None and not result.classification.ok:
            print(
                "not factorable — classification failed: "
                f"{result.classification.reason}; using Magic Sets"
            )
        else:
            print("not applicable (no unit recursion); using Magic Sets")
    elif result.report.factorable:
        print(f"FACTORABLE — {result.report.certified_by}")
    else:
        print("not factorable; reasons:")
        for reason in result.report.reasons[:5]:
            print(f"  - {reason}")

    print("\n=== optimized program ===")
    print(result.best_program())

    if result.trace is not None and result.trace.steps:
        print("\n=== simplification trace ===")
        for step in result.trace.steps:
            print(f"  {step}")


if __name__ == "__main__":
    main()
