#!/usr/bin/env python
"""Domain scenario: reachability in a flight network.

Uses the high-level :class:`repro.session.DeductiveDatabase` API — the
interface an application developer would actually adopt.  The rules are
the three-rule transitive closure over a ``flight`` relation; the
single-origin query ("where can I get to from MSN?") is exactly the
single-selection form the paper optimizes, and the session layer
factors it automatically.

Usage:  python examples/flight_routes.py
"""

import random

from repro.session import DeductiveDatabase


AIRPORTS = [
    "msn", "ord", "dfw", "jfk", "lax", "sea", "atl", "den",
    "sfo", "bos", "mia", "phx", "iah", "clt", "dtw", "msp",
]


def build_network(seed: int = 7) -> DeductiveDatabase:
    db = DeductiveDatabase()
    db.rules(
        """
        route(X, Y) :- route(X, W), route(W, Y).
        route(X, Y) :- flight(X, W), route(W, Y).
        route(X, Y) :- route(X, W), flight(W, Y).
        route(X, Y) :- flight(X, Y).
        """
    )
    rng = random.Random(seed)
    # a hub-and-spoke network: hubs interconnect, spokes reach hubs
    hubs = AIRPORTS[1:6]
    for a in hubs:
        for b in hubs:
            if a != b and rng.random() < 0.6:
                db.fact("flight", a, b)
    for spoke in AIRPORTS[6:]:
        for hub in rng.sample(hubs, 2):
            db.fact("flight", spoke, hub)
            if rng.random() < 0.5:
                db.fact("flight", hub, spoke)
    db.fact("flight", "msn", "ord")
    db.fact("flight", "msn", "msp")
    return db


def main() -> None:
    db = build_network()

    print("=== plan for route(msn, Y)? ===")
    print(db.plan_summary("route(msn, Y)"))

    report = db.explain("route(msn, Y)")
    destinations = sorted(d for (d,) in report.answers)
    print(f"\nreachable from MSN ({len(destinations)}): {', '.join(destinations)}")
    print(f"strategy: {report.strategy} ({report.certified_by})")
    print(
        f"cost: {report.stats.facts} facts, {report.stats.inferences} "
        f"inferences, {report.stats.seconds * 1000:.1f} ms"
    )

    print("\n=== point-to-point checks ===")
    for origin, dest in [("msn", "lax"), ("lax", "msn"), ("bos", "phx")]:
        verdict = "yes" if db.holds(f"route({origin}, {dest})") else "no"
        print(f"  {origin} -> {dest}: {verdict}")

    print("\n=== compare with the unoptimized closure ===")
    from repro.engine.seminaive import seminaive_eval

    full_db, full_stats = seminaive_eval(db.program, db.edb)
    print(
        f"full closure: {len(full_db.facts('route'))} route facts, "
        f"{full_stats.inferences} inferences"
    )
    print(
        f"factored single-origin query: {report.stats.facts} facts, "
        f"{report.stats.inferences} inferences"
    )


if __name__ == "__main__":
    main()
