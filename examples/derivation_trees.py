#!/usr/bin/env python
"""Derivation trees (Definition 2.1): explaining answers.

The paper's proofs are inductions over derivation trees; the engine can
materialize them.  This example derives a route through a small network
with the *factored* program and prints the derivation tree for one
answer — showing how the unary m_/f_ predicates chain where the binary
`route` relation used to be.

Usage:  python examples/derivation_trees.py
"""

from repro import optimize, parse_literal, parse_program, parse_query
from repro.engine.database import Database
from repro.engine.provenance import provenance_eval


def main() -> None:
    program = parse_program(
        """
        route(X, Y) :- hop(X, Y).
        route(X, Y) :- hop(X, W), route(W, Y).
        """
    )
    edb = Database.from_dict(
        {
            "hop": [
                ("msn", "ord"),
                ("ord", "den"),
                ("den", "sfo"),
                ("sfo", "hnl"),
            ]
        }
    )
    goal = parse_query("route(msn, Y)")

    print("=== original program ===")
    print(program)

    print("\n--- original program: why is hnl reachable? ---")
    tree = provenance_eval(program, edb).explain(
        parse_literal("route(msn, hnl)")
    )
    print(tree.render())
    print(f"(height {tree.height()}, {tree.size()} nodes)")

    result = optimize(program, goal)
    print("\n=== factored program ===")
    print(result.simplified.program)

    print("\n--- factored program: why is hnl an answer? ---")
    prov = provenance_eval(result.simplified.program, edb)
    tree = prov.explain(parse_literal("f_route@bf(hnl)"))
    print(tree.render())
    print(
        f"\nThe factored derivation carries only unary facts: the magic "
        f"chain m_route@bf walks the hops, and each f_route@bf answer is "
        f"one rule application away — {tree.size()} nodes for the same "
        "conclusion."
    )


if __name__ == "__main__":
    main()
