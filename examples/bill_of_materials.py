#!/usr/bin/env python
"""Domain scenario: bill-of-materials traversal + a non-factorable query.

Two queries over a parts hierarchy:

1. ``uses(widget, P)`` — which parts does a widget (transitively)
   contain?  A right/left-linear recursion: factorable, evaluated with
   a unary recursive predicate.
2. ``same_level(P, Q)`` — which parts sit at the same depth of the
   assembly?  This is the same-generation shape the paper names as the
   canonical *non*-factorable recursion; the session falls back to
   Magic Sets and stays correct.

Usage:  python examples/bill_of_materials.py
"""

from repro.session import DeductiveDatabase


def build_bom() -> DeductiveDatabase:
    db = DeductiveDatabase()
    db.rules(
        """
        uses(X, Y) :- part_of(Y, X).
        uses(X, Y) :- part_of(W, X), uses(W, Y).

        same_level(X, Y) :- sibling(X, Y).
        same_level(X, Y) :- part_of(X, U), same_level(U, V), part_of(Y, V).
        """
    )
    assembly = {
        "widget": ["frame", "motor", "panel"],
        "frame": ["beam", "bolt"],
        "motor": ["rotor", "stator", "bolt"],
        "panel": ["screen", "button"],
        "rotor": ["shaft", "magnet"],
        "screen": ["glass"],
    }
    for parent, children in assembly.items():
        for child in children:
            db.fact("part_of", child, parent)
        for a, b in zip(children, children[1:]):
            db.fact("sibling", a, b)
    return db


def main() -> None:
    db = build_bom()

    print("=== query 1: uses(widget, P)? — factorable ===")
    report = db.explain("uses(widget, P)")
    print(f"strategy: {report.strategy} ({report.certified_by})")
    parts = sorted(p for (p,) in report.answers)
    print(f"widget transitively uses {len(parts)} parts:")
    print("  " + ", ".join(parts))
    print(f"cost: {report.stats.facts} facts, {report.stats.inferences} inferences")

    print("\ncompiled program:")
    print(db.compiled_program("uses(widget, P)"))

    print("\n=== query 2: same_level(rotor, Q)? — not factorable ===")
    report2 = db.explain("same_level(rotor, Q)")
    print(f"strategy: {report2.strategy}  (classifier rejected factoring: "
          "the recursive occurrence shifts both arguments)")
    peers = sorted(q for (q,) in report2.answers)
    print(f"parts at rotor's level: {', '.join(peers) if peers else '(none)'}")
    print(f"cost: {report2.stats.facts} facts, {report2.stats.inferences} inferences")

    print("\n=== query 3: ground check ===")
    print(f"does the motor use a magnet? "
          f"{'yes' if db.holds('uses(motor, magnet)') else 'no'}")
    print(f"does the panel use a magnet? "
          f"{'yes' if db.holds('uses(panel, magnet)') else 'no'}")


if __name__ == "__main__":
    main()
